package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"tempart/internal/mesh"
	"tempart/internal/temporal"
)

// evalReq is smallReq plus an evaluate spec.
func evalReq(seed int64, evalJSON string) string {
	return fmt.Sprintf(`{"mesh":"CYLINDER","scale":0.002,"k":4,"strategy":"MC_TL","options":{"seed":%d},"evaluate":%s}`,
		seed, evalJSON)
}

func TestPartitionEvaluate(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	resp, body := postJSON(t, ts.URL, evalReq(1, `{"procs":2,"workers":4,"scheduler":"eager"}`))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d body %s", resp.StatusCode, body)
	}
	var pr PartitionResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	ev := pr.Eval
	if ev == nil {
		t.Fatalf("response has no eval block: %s", body)
	}
	if ev.Scheduler != "eager" || ev.Procs != 2 || ev.Workers != 4 || ev.Iterations != 1 {
		t.Fatalf("eval echo = %+v", ev)
	}
	if ev.Makespan <= 0 || ev.CriticalPath <= 0 || ev.Makespan < ev.CriticalPath {
		t.Fatalf("makespan %d vs critical path %d", ev.Makespan, ev.CriticalPath)
	}
	if ev.NumTasks <= 0 || ev.NumDeps <= 0 || ev.TotalWork <= 0 {
		t.Fatalf("graph stats = %+v", ev)
	}
	if ev.Efficiency <= 0 || ev.Efficiency > 1 {
		t.Fatalf("efficiency = %v, want (0, 1]", ev.Efficiency)
	}
	if ev.GraphCached {
		t.Fatalf("first evaluation cannot have a cached graph")
	}

	// Identical request: served byte-for-byte from the response cache.
	resp2, body2 := postJSON(t, ts.URL, evalReq(1, `{"procs":2,"workers":4,"scheduler":"eager"}`))
	if got := resp2.Header.Get("X-Tempartd-Cache"); got != "hit" {
		t.Fatalf("identical evaluate request cache header = %q, want hit", got)
	}
	if !bytes.Equal(body, body2) {
		t.Fatalf("cache returned different bytes")
	}

	m := fetchMetrics(t, ts.URL)
	if got := metricValue(t, m, "tempartd_eval_runs_total"); got != "1" {
		t.Fatalf("eval_runs_total = %q, want 1", got)
	}
}

// TestEvaluateCacheKeyDistinct pins that the evaluate spec is part of the
// request's content address: with/without a spec, and distinct specs, are
// distinct cache entries, while an equivalent spelling shares one.
func TestEvaluateCacheKeyDistinct(t *testing.T) {
	base := PartitionRequest{MeshName: "CYLINDER", Scale: 0.002, K: 4, Strategy: "MC_TL"}
	if err := base.validate(); err != nil {
		t.Fatal(err)
	}
	withEval := base
	withEval.Evaluate = &EvalSpec{Procs: 2, Workers: 4}
	if err := withEval.validate(); err != nil {
		t.Fatal(err)
	}
	if base.key() == withEval.key() {
		t.Fatalf("evaluate spec must change the content address")
	}
	other := base
	other.Evaluate = &EvalSpec{Procs: 4, Workers: 4}
	if err := other.validate(); err != nil {
		t.Fatal(err)
	}
	if withEval.key() == other.key() {
		t.Fatalf("distinct evaluate specs must have distinct addresses")
	}
	// Canonicalization: "" and "eager" are the same scheduler.
	spelled := base
	spelled.Evaluate = &EvalSpec{Procs: 2, Workers: 4, Scheduler: "eager"}
	if err := spelled.validate(); err != nil {
		t.Fatal(err)
	}
	if withEval.key() != spelled.key() {
		t.Fatalf("default and explicit scheduler spellings must share an address")
	}
}

// TestEvaluateGraphReuse drives the graph cache across requests: the same
// decomposition scored under a different scheduler, and a keep-mode
// repartition re-scoring its parent's assignment, both skip rebuilding the
// task graph.
func TestEvaluateGraphReuse(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	resp, body := postJSON(t, ts.URL, evalReq(7, `{"procs":2,"workers":4}`))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("partition: status %d body %s", resp.StatusCode, body)
	}
	var pr PartitionResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Eval == nil || pr.Eval.GraphCached {
		t.Fatalf("first eval block = %+v", pr.Eval)
	}

	// Same decomposition, different scheduler: new response-cache entry, but
	// the mesh id and partition are unchanged, so the graph is reused.
	resp2, body2 := postJSON(t, ts.URL, evalReq(7, `{"procs":2,"workers":4,"scheduler":"cpf"}`))
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second partition: status %d body %s", resp2.StatusCode, body2)
	}
	var pr2 PartitionResponse
	if err := json.Unmarshal(body2, &pr2); err != nil {
		t.Fatal(err)
	}
	if pr2.Eval == nil || !pr2.Eval.GraphCached {
		t.Fatalf("strategy variant should reuse the cached graph: %+v", pr2.Eval)
	}
	if pr2.Eval.BuildMS != 0 {
		t.Fatalf("cached graph reports build time %v ms", pr2.Eval.BuildMS)
	}

	// Keep-mode repartition from the stored parent: the assignment (and the
	// generator mesh id) are unchanged, so scoring it hits the graph cache
	// instead of rebuilding the parent's task graph.
	req := fmt.Sprintf(`{"mesh":"CYLINDER","scale":0.002,"k":4,"strategy":"MC_TL","options":{"seed":8},"parent_hash":%q,"mode":"keep","evaluate":{"procs":2,"workers":4}}`, pr.PartHash)
	resp3, body3 := postRepart(t, ts.URL, req)
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("repartition: status %d body %s", resp3.StatusCode, body3)
	}
	var rr RepartitionResponse
	if err := json.Unmarshal(body3, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Eval == nil {
		t.Fatalf("repartition response has no eval block: %s", body3)
	}
	if rr.Mode != "keep" {
		t.Fatalf("mode = %q, want keep", rr.Mode)
	}
	if !rr.Eval.GraphCached {
		t.Fatalf("keep-mode repartition should reuse the parent's graph: %+v", rr.Eval)
	}
	if rr.Eval.Makespan != pr.Eval.Makespan {
		t.Fatalf("keep-mode makespan %d differs from parent's %d", rr.Eval.Makespan, pr.Eval.Makespan)
	}

	m := fetchMetrics(t, ts.URL)
	if got := metricValue(t, m, "tempartd_eval_runs_total"); got != "3" {
		t.Fatalf("eval_runs_total = %q, want 3", got)
	}
	if got := metricValue(t, m, "tempartd_eval_graph_cache_hits_total"); got != "2" {
		t.Fatalf("eval_graph_cache_hits_total = %q, want 2", got)
	}
}

// TestEvaluateOctetStream exercises the eval_* query-parameter surface on a
// mesh upload, including the stable content-digest mesh id: re-uploading the
// same bytes with a different scheduler reuses the graph.
func TestEvaluateOctetStream(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	m := mesh.Strip([]temporal.Level{0, 0, 1, 1, 2, 2, 0, 1})
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	post := func(params string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/partition?k=2&strategy=SC_OC&seed=3"+params,
			"application/octet-stream", bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp, b
	}

	resp, body := post("&eval_procs=2&eval_workers=1&eval_scheduler=lifo")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upload: status %d body %s", resp.StatusCode, body)
	}
	var pr PartitionResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Eval == nil || pr.Eval.Scheduler != "lifo" || pr.Eval.Makespan <= 0 {
		t.Fatalf("eval block = %+v", pr.Eval)
	}
	if pr.Eval.GraphCached {
		t.Fatalf("first upload cannot have a cached graph")
	}

	// Same bytes, different scheduler: response-cache miss, graph-cache hit
	// (the mesh id is the upload's content digest, the partition is seeded).
	resp2, body2 := post("&eval_procs=2&eval_workers=1&eval_scheduler=random&eval_seed=5")
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second upload: status %d body %s", resp2.StatusCode, body2)
	}
	if got := resp2.Header.Get("X-Tempartd-Cache"); got != "miss" {
		t.Fatalf("distinct eval spec cache header = %q, want miss", got)
	}
	var pr2 PartitionResponse
	if err := json.Unmarshal(body2, &pr2); err != nil {
		t.Fatal(err)
	}
	if pr2.Eval == nil || !pr2.Eval.GraphCached {
		t.Fatalf("re-uploaded mesh should reuse the cached graph: %+v", pr2.Eval)
	}
}

func TestEvaluateValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	cases := []struct {
		name, body string
	}{
		{"procs missing", evalReq(1, `{"workers":4}`)},
		{"procs negative", evalReq(1, `{"procs":-1}`)},
		{"procs huge", evalReq(1, fmt.Sprintf(`{"procs":%d}`, maxEvalProcs+1))},
		{"workers negative", evalReq(1, `{"procs":2,"workers":-1}`)},
		{"bad scheduler", evalReq(1, `{"procs":2,"scheduler":"heft"}`)},
		{"latency negative", evalReq(1, `{"procs":2,"comm_latency":-1}`)},
		{"iterations huge", evalReq(1, fmt.Sprintf(`{"procs":2,"iterations":%d}`, maxEvalIterations+1))},
		{"unknown field", evalReq(1, `{"procs":2,"bogus":1}`)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, ts.URL, tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400; body %s", resp.StatusCode, body)
			}
			if !strings.Contains(string(body), "evaluate") && !strings.Contains(string(body), "unknown field") {
				t.Fatalf("error does not name the evaluate field: %s", body)
			}
		})
	}
}
