package solver

import (
	"context"
	"testing"

	"tempart/internal/flusim"
	"tempart/internal/fv"
	"tempart/internal/mesh"
	"tempart/internal/partition"
	"tempart/internal/runtime"
)

func TestNewRejectsBadConfig(t *testing.T) {
	m := mesh.Cube(0.01)
	if _, err := New(context.Background(), m, Config{NumDomains: 0}); err == nil {
		t.Fatal("accepted 0 domains")
	}
}

func TestRunConservesMass(t *testing.T) {
	m := mesh.Cylinder(0.0005)
	s, err := New(context.Background(), m, Config{NumDomains: 4, Strategy: partition.MCTL, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MassDriftRel > 1e-10 {
		t.Errorf("mass drift %.3e", rep.MassDriftRel)
	}
	if len(rep.WallPerIteration) != 3 {
		t.Errorf("iterations recorded = %d", len(rep.WallPerIteration))
	}
}

func TestRunMatchesSerialReference(t *testing.T) {
	m := mesh.Cube(0.02)
	s, err := New(context.Background(), m, Config{NumDomains: 3, Strategy: partition.SCOC, Workers: 3, Policy: runtime.WorkStealing})
	if err != nil {
		t.Fatal(err)
	}
	// Serial reference with identical initial state, on the solver's
	// domain-reordered mesh copy (cell ids differ from the input mesh).
	ref := fv.NewState(s.Mesh, s.State.Params())
	copy(ref.U, s.State.U)
	ref.RunIteration()
	ref.RunIteration()

	if _, err := s.Run(2); err != nil {
		t.Fatal(err)
	}
	// The per-face-side accumulator scheme makes every slot single-writer,
	// so the task-parallel result is bit-exact equal to the serial one.
	for c := range ref.U {
		if ref.U[c] != s.State.U[c] {
			t.Fatalf("cell %d: parallel %v != serial %v (determinism broken)", c, s.State.U[c], ref.U[c])
		}
	}
}

func TestVirtualMakespanBounds(t *testing.T) {
	m := mesh.Cylinder(0.0005)
	s, err := New(context.Background(), m, Config{NumDomains: 8, Strategy: partition.MCTL, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.VirtualMakespan(rep, flusim.Cluster{NumProcs: 4, WorkersPerProc: 2}, flusim.Eager, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan < res.CriticalPath {
		t.Error("virtual makespan below critical path")
	}
	var wall int64
	for _, d := range rep.Durations {
		wall += d.Nanoseconds()
	}
	if res.TotalWork != wall {
		t.Errorf("virtual total work %d != summed durations %d", res.TotalWork, wall)
	}
}

func TestUnitMakespan(t *testing.T) {
	m := mesh.Cube(0.02)
	s, err := New(context.Background(), m, Config{NumDomains: 4, Strategy: partition.SCOC})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.UnitMakespan(flusim.Cluster{NumProcs: 2, WorkersPerProc: 2}, flusim.Eager, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 || res.Trace == nil {
		t.Error("degenerate unit makespan")
	}
	if res.TotalWork != s.TG.TotalWork() {
		t.Errorf("unit total work %d != graph work %d", res.TotalWork, s.TG.TotalWork())
	}
}

func TestTraceRecordedOnLastIteration(t *testing.T) {
	m := mesh.Cube(0.01)
	s, err := New(context.Background(), m, Config{NumDomains: 2, Strategy: partition.MCTL, Workers: 2, RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trace == nil || len(rep.Trace.Spans) != s.TG.NumTasks() {
		t.Fatal("last-iteration trace missing or incomplete")
	}
}

// TestProductionStyleGain is the Figure 13 phenomenon end-to-end: measured-
// duration virtual makespans favour MC_TL over SC_OC. The mesh must be large
// enough that kernel time dominates per-task overhead (µs-sized tasks are
// critical-path-bound and penalise fine granularity — see EXPERIMENTS.md),
// hence the ~64k-cell mesh and 3-iteration minimum-duration measurement.
func TestProductionStyleGain(t *testing.T) {
	m := mesh.Nozzle(0.01)
	cluster := flusim.Cluster{NumProcs: 6, WorkersPerProc: 4}
	virtual := func(strat partition.Strategy) int64 {
		s, err := New(context.Background(), m, Config{NumDomains: 12, Strategy: strat, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := s.Run(3)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.VirtualMakespan(rep, cluster, flusim.Eager, false)
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	sc := virtual(partition.SCOC)
	mc := virtual(partition.MCTL)
	t.Logf("virtual makespans: SC_OC=%d MC_TL=%d ratio=%.2f", sc, mc, float64(sc)/float64(mc))
	if mc >= sc {
		t.Errorf("MC_TL virtual makespan %d not better than SC_OC %d", mc, sc)
	}
}

func TestEulerModelThroughRuntime(t *testing.T) {
	m := mesh.Cube(0.05)
	s, err := New(context.Background(), m, Config{
		NumDomains: 4, Strategy: partition.MCTL, Workers: 3,
		Policy: runtime.WorkStealing, Model: Euler,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.EulerState == nil || s.State != nil {
		t.Fatal("Euler model did not select EulerState")
	}
	rep, err := s.Run(2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MassDriftRel > 1e-10 {
		t.Errorf("Euler mass drift %.3e", rep.MassDriftRel)
	}
	// Parallel Euler must match the serial reference.
	ref := fv.NewEulerState(s.Mesh, fv.EulerParams{})
	cx, cy, cz := hotCentroid(s.Mesh)
	ref.InitBlast(cx, cy, cz, 0.25, 2.0)
	ref.RunIteration()
	ref.RunIteration()
	for c := range ref.Rho {
		if ref.Rho[c] != s.EulerState.Rho[c] || ref.E[c] != s.EulerState.E[c] {
			t.Fatalf("cell %d: parallel Euler differs from serial (determinism broken)", c)
		}
	}
}

func TestModelString(t *testing.T) {
	if Scalar.String() != "scalar" || Euler.String() != "euler" {
		t.Error("model labels wrong")
	}
}
