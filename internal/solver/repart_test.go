package solver

import (
	"context"
	"math"
	"testing"

	"tempart/internal/mesh"
	"tempart/internal/partition"
	"tempart/internal/repart"
)

// driftScore shifts the cylinder's hot segment along x, mirroring the drift
// experiment.
func driftScore(shift float64) func(x, y, z float64) float64 {
	return func(x, y, z float64) float64 {
		ax, bx := 0.9+shift, 1.1+shift
		vx := bx - ax
		t := (x - ax) / vx
		t = math.Max(0, math.Min(1, t))
		dx, dy, dz := x-(ax+t*vx), y-0.5, z-0.5
		return math.Sqrt(dx*dx + dy*dy + dz*dz)
	}
}

func TestRunWithRepartPolicy(t *testing.T) {
	m := mesh.Cylinder(0.001)
	s, err := New(context.Background(), m, Config{
		NumDomains: 8,
		Strategy:   partition.MCTL,
		Workers:    2,
		Repart: &RepartPolicy{
			Every: 2,
			Levels: func(it int) (func(x, y, z float64) float64, []int64) {
				return driftScore(0.1 * float64(it+1)), mesh.CylinderCounts
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	mass0 := s.k.Mass()
	rep, err := s.RunContext(context.Background(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rep.Repartitions); got != 2 { // after iterations 1 and 3
		t.Fatalf("recorded %d repartitions, want 2: %+v", got, rep.Repartitions)
	}
	for _, ev := range rep.Repartitions {
		if ev.Mode == "" || ev.Mode == "auto" {
			t.Errorf("event %+v has unresolved mode", ev)
		}
		if ev.ImbalanceAfter > ev.ImbalanceBefore {
			t.Errorf("repartition worsened imbalance: %+v", ev)
		}
	}
	// The new assignment must be live: partition, mesh-order part and task
	// graph agree on the cell count, and the state still runs.
	if len(s.CurrentPart()) != s.Mesh.NumCells() {
		t.Fatalf("CurrentPart has %d cells, mesh %d", len(s.CurrentPart()), s.Mesh.NumCells())
	}
	if err := s.Partition.Validate(s.Mesh.DualGraph(mesh.DualGraphOptions{Constraints: mesh.PerLevel})); err != nil {
		t.Error(err)
	}
	// Durations were reset at the last repartition (iteration 3) and then
	// re-collected for the final task graph.
	if len(rep.Durations) != len(s.TG.Tasks) {
		t.Errorf("%d durations for %d tasks", len(rep.Durations), len(s.TG.Tasks))
	}
	// Mass is conserved across level reassignment and repartitioning: the
	// mesh cells never move, only their levels and owners change.
	if mass1 := s.k.Mass(); mass0 != 0 {
		if drift := math.Abs(mass1-mass0) / math.Abs(mass0); drift > 1e-9 {
			t.Errorf("mass drifted by %.2e across repartitions", drift)
		}
	}
}

func TestRepartPolicySkipsOnNilScore(t *testing.T) {
	m := mesh.Cylinder(0.001)
	s, err := New(context.Background(), m, Config{
		NumDomains: 4,
		Strategy:   partition.MCTL,
		Repart: &RepartPolicy{
			Every:  1,
			Levels: func(int) (func(x, y, z float64) float64, []int64) { return nil, nil },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Repartitions) != 0 {
		t.Errorf("nil score still repartitioned: %+v", rep.Repartitions)
	}
}

func TestRunContextCancelled(t *testing.T) {
	m := mesh.Cylinder(0.001)
	s, err := New(context.Background(), m, Config{NumDomains: 4, Strategy: partition.SCOC})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.RunContext(ctx, 2); err == nil {
		t.Error("cancelled context not reported")
	}
}

func TestRepartPolicyScratchMode(t *testing.T) {
	m := mesh.Cylinder(0.001)
	s, err := New(context.Background(), m, Config{
		NumDomains: 8,
		Strategy:   partition.MCTL,
		Repart: &RepartPolicy{
			Every: 1,
			Opt:   repart.Options{Mode: repart.Scratch},
			Levels: func(it int) (func(x, y, z float64) float64, []int64) {
				return driftScore(0.2), mesh.CylinderCounts
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Repartitions) != 1 || rep.Repartitions[0].Mode != "scratch" {
		t.Errorf("events = %+v, want one scratch", rep.Repartitions)
	}
}
