// Package solver is the FLUSEPA analogue of this reproduction: a complete
// task-distributed explicit finite-volume solver with adaptive time stepping.
// It wires the full pipeline together — mesh → partitioning strategy → task
// graph (Algorithm 1) → task-based runtime executing the FV kernels — and
// reports both real wall-clock behaviour and virtual-cluster makespans
// obtained by replaying the measured task durations through the discrete-
// event engine (the single-host stand-in for a multi-node run; DESIGN.md §2).
package solver

import (
	"context"
	"fmt"
	"math"
	"time"

	"tempart/internal/flusim"
	"tempart/internal/fv"
	"tempart/internal/mesh"
	"tempart/internal/partition"
	"tempart/internal/runtime"
	"tempart/internal/taskgraph"
	"tempart/internal/trace"
)

// Model selects the physics executed by the tasks.
type Model int

const (
	// Scalar is the advection–diffusion model (fv.State) — light kernels.
	Scalar Model = iota
	// Euler is the compressible Euler model (fv.EulerState) — five
	// conserved variables, kernels ≈ 5× heavier, closest to the production
	// Navier-Stokes load.
	Euler
)

// String implements fmt.Stringer.
func (m Model) String() string {
	if m == Euler {
		return "euler"
	}
	return "scalar"
}

// Config assembles a solver.
type Config struct {
	// NumDomains is the partition size (task granularity).
	NumDomains int
	// Strategy is the partitioning strategy (SC_OC, MC_TL, ...).
	Strategy partition.Strategy
	// PartOpts tunes the partitioner.
	PartOpts partition.Options
	// Workers is the number of real worker goroutines. Defaults to 1.
	Workers int
	// Policy is the runtime scheduling policy.
	Policy runtime.Policy
	// Model selects scalar advection–diffusion (default) or compressible
	// Euler kernels.
	Model Model
	// FV sets the scalar physics; zero value uses fv.DefaultParams.
	FV fv.Params
	// EulerParams sets the Euler physics (used when Model == Euler).
	EulerParams fv.EulerParams
	// RecordTrace captures wall-clock spans of the last iteration.
	RecordTrace bool
	// Repart, when set, re-assesses temporal levels periodically during Run
	// and repartitions the mesh in place with internal/repart (see
	// RepartPolicy).
	Repart *RepartPolicy
}

// kernels is the model-independent interface the runtime drives.
type kernels interface {
	ComputeFaces(faces []int32)
	UpdateCells(cells []int32)
	Mass() float64
	CheckFinite() error
	// RefreshLevels rebuilds level-dependent caches after the mesh's
	// temporal levels changed in place (only legal between iterations).
	RefreshLevels()
}

// Solver holds the assembled pipeline.
type Solver struct {
	Mesh      *mesh.Mesh
	Partition *partition.Result
	TG        *taskgraph.TaskGraph
	// State is the scalar model's state (nil when Model == Euler).
	State *fv.State
	// EulerState is the Euler model's state (nil when Model == Scalar).
	EulerState *fv.EulerState

	k   kernels
	cfg Config
	// part is the current domain assignment in the solver mesh's own cell
	// order (Solver.Mesh is a domain-ordered copy of the input mesh, so
	// Partition.Part — input order — cannot index it).
	part []int32
}

// CurrentPart returns the current domain assignment over Solver.Mesh's cell
// order. It changes when a Repart policy fires; callers must not modify it.
func (s *Solver) CurrentPart() []int32 { return s.part }

// Report summarises a multi-iteration run.
type Report struct {
	// WallPerIteration is each iteration's end-to-end time.
	WallPerIteration []time.Duration
	// Durations holds the per-task minimum measured time across iterations
	// — the minimum filters out one-off interference (GC pauses, first-touch
	// page faults, OS scheduling) that would otherwise distort the virtual
	// replay of a single iteration.
	Durations []time.Duration
	// Trace is the last iteration's wall-clock trace when requested.
	Trace *trace.Trace
	// MassDriftRel is |mass_end − mass_start| / |mass_start|.
	MassDriftRel float64
	// Repartitions records every in-run repartition a Repart policy fired.
	Repartitions []RepartEvent
}

// New partitions the mesh, builds the task graph with object lists, and
// initialises the FV state with a Gaussian blob centred on the mesh's hot
// region (minimum-level cells).
func New(ctx context.Context, m *mesh.Mesh, cfg Config) (*Solver, error) {
	if cfg.NumDomains < 1 {
		return nil, fmt.Errorf("solver: NumDomains = %d", cfg.NumDomains)
	}
	res, err := partition.PartitionMesh(ctx, m, cfg.NumDomains, cfg.Strategy, cfg.PartOpts)
	if err != nil {
		return nil, err
	}
	return NewFromPartition(m, res, cfg)
}

// NewFromPartition assembles a solver over an existing decomposition,
// skipping the partitioning step. The result's NumParts must equal
// cfg.NumDomains (or cfg.NumDomains may be zero to adopt it).
//
// The mesh is renumbered so every domain's cells and faces are contiguous —
// the data-redistribution step of the production pipeline (paper Fig. 2
// extracts domains and hands each process compact arrays). Solver.Mesh is
// therefore a domain-ordered *copy* of the input mesh.
func NewFromPartition(m *mesh.Mesh, res *partition.Result, cfg Config) (*Solver, error) {
	if cfg.NumDomains == 0 {
		cfg.NumDomains = res.NumParts
	}
	if cfg.NumDomains != res.NumParts {
		return nil, fmt.Errorf("solver: config wants %d domains, partition has %d", cfg.NumDomains, res.NumParts)
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.FV == (fv.Params{}) {
		cfg.FV = fv.DefaultParams()
	}
	ordered, newPart, _ := m.ReorderByDomain(res.Part, res.NumParts)
	tg, err := taskgraph.Build(ordered, newPart, cfg.NumDomains,
		taskgraph.Options{RecordObjects: true, Parallelism: cfg.PartOpts.Parallelism})
	if err != nil {
		return nil, err
	}
	s := &Solver{Mesh: ordered, Partition: res, TG: tg, cfg: cfg, part: newPart}
	cx, cy, cz := hotCentroid(ordered)
	switch cfg.Model {
	case Euler:
		s.EulerState = fv.NewEulerState(ordered, cfg.EulerParams)
		s.EulerState.InitBlast(cx, cy, cz, 0.25, 2.0)
		s.k = s.EulerState
	default:
		s.State = fv.NewState(ordered, cfg.FV)
		s.State.InitGaussian(cx, cy, cz, 0.25, 1.0)
		s.k = s.State
	}
	return s, nil
}

// hotCentroid returns the mean centroid of the finest-level cells.
func hotCentroid(m *mesh.Mesh) (x, y, z float64) {
	var n float64
	for c := 0; c < m.NumCells(); c++ {
		if m.Level[c] == 0 {
			x += float64(m.CX[c])
			y += float64(m.CY[c])
			z += float64(m.CZ[c])
			n++
		}
	}
	if n == 0 {
		return 0.5, 0.5, 0.5
	}
	return x / n, y / n, z / n
}

// kernel executes one task's objects through the model's FV kernels.
func (s *Solver) kernel(task *taskgraph.Task) {
	objs := s.TG.Objects[task.ID]
	if task.Kind == taskgraph.FaceKind {
		s.k.ComputeFaces(objs)
	} else {
		s.k.UpdateCells(objs)
	}
}

// Run executes the given number of iterations through the task runtime. An
// iteration's task graph is re-executed per iteration with a barrier in
// between (the cross-iteration dependency chain collapses to a barrier since
// the last tasks of iteration i write what the first tasks of i+1 read).
func (s *Solver) Run(iterations int) (*Report, error) {
	return s.RunContext(context.Background(), iterations)
}

// RunContext is Run with cancellation: ctx is checked between iterations and
// threaded through repartitioning when a Repart policy is configured.
func (s *Solver) RunContext(ctx context.Context, iterations int) (*Report, error) {
	if iterations < 1 {
		return nil, fmt.Errorf("solver: iterations = %d", iterations)
	}
	rep := &Report{}
	mass0 := s.k.Mass()
	for it := 0; it < iterations; it++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("solver: %w", err)
		}
		cfg := runtime.Config{
			Workers: s.cfg.Workers,
			Policy:  s.cfg.Policy,
			Seed:    int64(it),
		}
		if it == iterations-1 {
			cfg.RecordTrace = s.cfg.RecordTrace
		}
		r, err := runtime.Execute(s.TG, s.kernel, cfg)
		if err != nil {
			return nil, err
		}
		rep.WallPerIteration = append(rep.WallPerIteration, r.Wall)
		if rep.Durations == nil {
			rep.Durations = r.Durations
		} else {
			for i, d := range r.Durations {
				if d < rep.Durations[i] {
					rep.Durations[i] = d
				}
			}
		}
		rep.Trace = r.Trace
		if s.cfg.Repart != nil && it+1 < iterations {
			if err := s.maybeRepartition(ctx, it, rep); err != nil {
				return nil, err
			}
		}
	}
	if err := s.k.CheckFinite(); err != nil {
		return nil, err
	}
	mass1 := s.k.Mass()
	if mass0 != 0 {
		rep.MassDriftRel = math.Abs(mass1-mass0) / math.Abs(mass0)
	}
	return rep, nil
}

// VirtualMakespan replays the report's measured durations on a simulated
// cluster, pinning each domain's tasks to its process — the FLUSEPA-style
// distributed execution estimate.
func (s *Solver) VirtualMakespan(rep *Report, cluster flusim.Cluster, strategy flusim.Strategy, recordTrace bool) (*flusim.Result, error) {
	procOf := flusim.BlockMap(s.cfg.NumDomains, cluster.NumProcs)
	return runtime.VirtualSchedule(s.TG, rep.Durations, procOf, cluster, strategy, recordTrace)
}

// UnitMakespan schedules the task graph with its abstract costs (1 unit per
// object) on a cluster — the pure FLUSIM view, useful to compare against the
// measured-duration replay.
func (s *Solver) UnitMakespan(cluster flusim.Cluster, strategy flusim.Strategy, recordTrace bool) (*flusim.Result, error) {
	procOf := flusim.BlockMap(s.cfg.NumDomains, cluster.NumProcs)
	return flusim.Simulate(s.TG, procOf, flusim.Config{
		Cluster: cluster, Strategy: strategy, RecordTrace: recordTrace,
	})
}
