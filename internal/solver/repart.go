package solver

import (
	"context"
	"fmt"

	"tempart/internal/mesh"
	"tempart/internal/obs"
	"tempart/internal/partition"
	"tempart/internal/repart"
	"tempart/internal/taskgraph"
)

// RepartPolicy makes a running solver track temporal-level drift: every
// Every iterations the Levels callback re-scores the mesh, the solver
// reassigns temporal levels in place (mesh.ReassignLevels), and the domain
// decomposition is repaired incrementally with internal/repart — the
// in-situ analogue of the paper's offline repartitioning step.
type RepartPolicy struct {
	// Every fires the reassessment after iterations Every, 2·Every, …
	// Values < 1 default to 1.
	Every int
	// Levels returns the refinement score and per-level census targets for
	// the given (0-based, just-finished) iteration. Returning a nil score
	// skips the reassessment at that firing. The score follows
	// mesh.Spec.Score: lower values get finer temporal levels.
	Levels func(iteration int) (score func(x, y, z float64) float64, counts []int64)
	// Opt forwards to repart.Repartition. A nil Opt.MigBytes is filled with
	// repart.MeshMigrationBytes of the solver's mesh.
	Opt repart.Options
}

// RepartEvent records one in-run repartition in the Report.
type RepartEvent struct {
	// Iteration is the 0-based iteration after which the repartition ran.
	Iteration int `json:"iteration"`
	// Mode is the repart strategy actually used ("keep", "diffuse", ...).
	Mode string `json:"mode"`
	// ImbalanceBefore/After are the worst per-constraint imbalances of the
	// old assignment on the re-levelled mesh and of the new assignment.
	ImbalanceBefore float64 `json:"imbalance_before"`
	ImbalanceAfter  float64 `json:"imbalance_after"`
	// MovedCells and MovedBytes quantify the migration.
	MovedCells int   `json:"moved_cells"`
	MovedBytes int64 `json:"moved_bytes"`
	// EdgeCut is the new assignment's edge cut.
	EdgeCut int64 `json:"edge_cut"`
}

// repartConstraints maps the solver's partitioning strategy onto the dual-
// graph constraint kind used for incremental repartitioning. The geometric
// strategies have no graph constraints of their own; they repartition under
// operating cost.
func repartConstraints(s partition.Strategy) mesh.ConstraintKind {
	switch s {
	case partition.MCTL:
		return mesh.PerLevel
	case partition.UnitCells:
		return mesh.Unit
	default:
		return mesh.SingleCost
	}
}

// maybeRepartition runs the Repart policy after iteration it: reassess
// temporal levels, refresh the FV caches, repartition incrementally from the
// current assignment, and rebuild the task graph over the same (unmoved)
// mesh so the FV state arrays stay valid. Measured durations collected so
// far are dropped — they describe tasks of the old graph.
func (s *Solver) maybeRepartition(ctx context.Context, it int, rep *Report) error {
	pol := s.cfg.Repart
	every := pol.Every
	if every < 1 {
		every = 1
	}
	if (it+1)%every != 0 || pol.Levels == nil {
		return nil
	}
	score, counts := pol.Levels(it)
	if score == nil {
		return nil
	}

	// One span per fired repartition epoch; the repart.Repartition call nests
	// its own spans (mode, migration) under it through the context.
	span := obs.StartSpan(ctx, "solver/repart_epoch")
	defer span.End()
	if span.Active() {
		span.SetInt("iteration", int64(it))
		ctx = obs.ContextWithSpan(ctx, span)
	}

	// Levels change in place; every level-derived cache must be rebuilt.
	// This is only safe between iterations: the flux accumulators are
	// drained at iteration boundaries, so no in-flight face contribution is
	// scaled by a stale time step.
	s.Mesh.ReassignLevels(score, counts)
	s.k.RefreshLevels()

	g := s.Mesh.DualGraph(mesh.DualGraphOptions{Constraints: repartConstraints(s.cfg.Strategy)})
	old := partition.NewResult(g, s.part, s.cfg.NumDomains)
	opt := pol.Opt
	if opt.Part.Seed == 0 {
		opt.Part.Seed = s.cfg.PartOpts.Seed + int64(it) + 1
	}
	if opt.MigBytes == nil {
		opt.MigBytes = repart.MeshMigrationBytes(s.Mesh)
	}
	res, err := repart.Repartition(ctx, g, old, opt)
	if err != nil {
		return fmt.Errorf("solver: repartition after iteration %d: %w", it, err)
	}

	// Rebuild the task graph over the same mesh ordering (no second
	// renumbering — the FV state indexes the current arrays).
	tg, err := taskgraph.Build(s.Mesh, res.Part, s.cfg.NumDomains,
		taskgraph.Options{RecordObjects: true, Parallelism: s.cfg.PartOpts.Parallelism})
	if err != nil {
		return fmt.Errorf("solver: rebuilding task graph after iteration %d: %w", it, err)
	}
	s.part = res.Part
	s.Partition = res.Result
	s.TG = tg
	// The old graph's per-task durations cannot be merged with the new
	// graph's (task identity changed); restart the minimum tracking.
	rep.Durations = nil

	rep.Repartitions = append(rep.Repartitions, RepartEvent{
		Iteration:       it,
		Mode:            res.Mode.String(),
		ImbalanceBefore: old.MaxImbalance(),
		ImbalanceAfter:  res.MaxImbalance(),
		MovedCells:      res.Stats.MovedCells,
		MovedBytes:      res.Stats.MovedBytes,
		EdgeCut:         res.EdgeCut,
	})
	if span.Active() {
		span.SetStr("mode", res.Mode.String())
		span.SetInt("moved_cells", int64(res.Stats.MovedCells))
		span.SetInt("moved_bytes", res.Stats.MovedBytes)
		span.SetFloat("imbalance_after", res.MaxImbalance())
	}
	obs.FromContext(ctx).Count("solver.repart_events", 1)
	return nil
}
