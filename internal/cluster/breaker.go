package cluster

import (
	"sync"
	"time"
)

// BreakerState is the classic three-state circuit: closed (calls flow),
// open (calls short-circuit until the cooldown elapses), half-open (one
// probe in flight decides whether to close again).
type BreakerState int

const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// breaker is a per-peer circuit breaker over transport failures. Only
// failures to get *any* HTTP response count against it — a peer answering
// 4xx/5xx is alive, and tripping on its answers would turn one bad request
// into a blackout of a healthy shard.
type breaker struct {
	mu        sync.Mutex
	threshold int           // consecutive failures that open the circuit
	cooldown  time.Duration // open -> half-open delay
	now       func() time.Time

	failures int
	state    BreakerState
	openedAt time.Time
	probing  bool // a half-open probe is in flight
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// allow reports whether a call may proceed, consuming the single half-open
// probe slot when the cooldown has elapsed.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerHalfOpen:
		// One probe decides; concurrent callers wait for its verdict.
		return false
	default: // open
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	}
}

// available is allow without side effects: would a call (eventually) be
// admitted right now? Used for planning fan-outs without consuming the
// half-open probe slot.
func (b *breaker) available() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerHalfOpen:
		return false
	default:
		return b.now().Sub(b.openedAt) >= b.cooldown
	}
}

func (b *breaker) onSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	b.state = BreakerClosed
	b.probing = false
}

func (b *breaker) onFailure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures++
	if b.state == BreakerHalfOpen {
		// Failed probe: straight back to open, restart the cooldown.
		b.state = BreakerOpen
		b.openedAt = b.now()
		b.probing = false
		return
	}
	if b.failures >= b.threshold {
		b.state = BreakerOpen
		b.openedAt = b.now()
	}
}

// currentState reports the state for metrics/status, surfacing open→half-open
// eligibility without mutating (an open breaker past its cooldown still
// reads as open until a call actually probes it).
func (b *breaker) currentState() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
