package cluster

// PeerStatus is one peer's health as this node sees it.
type PeerStatus struct {
	ID  string `json:"id"`
	URL string `json:"url"`
	// Breaker is the circuit state: "closed", "open" or "half-open".
	Breaker string `json:"breaker"`
	// Available reports whether a call would currently be admitted (closed,
	// or open with the cooldown elapsed).
	Available bool `json:"available"`
}

// Status is the GET /v1/cluster/status payload: this node's view of the
// fleet. Breaker states are local observations — two nodes can legitimately
// disagree about a third.
type Status struct {
	Self           string       `json:"self"`
	Nodes          []Node       `json:"nodes"`
	Peers          []PeerStatus `json:"peers"`
	FanoutMinCells int          `json:"fanout_min_cells"`
	HealthyPeers   int          `json:"healthy_peers"`
}

// Status snapshots the fleet view for the status endpoint.
func (c *Cluster) Status() Status {
	st := Status{
		Self:           c.self.ID,
		Nodes:          c.nodes,
		FanoutMinCells: c.opts.FanoutMinCells,
	}
	for _, p := range c.peers {
		b := c.breakerFor(p.ID)
		ps := PeerStatus{ID: p.ID, URL: p.URL, Breaker: b.currentState().String(), Available: b.available()}
		if ps.Available {
			st.HealthyPeers++
		}
		st.Peers = append(st.Peers, ps)
	}
	return st
}
