// Package cluster turns tempartd into a static-membership, sharded fleet.
//
// Membership is configuration, not consensus: every node is started with the
// same `-peers` list and its own `-node-id`, and derives an identical
// consistent-hash ring from the ids alone. Content-addressed requests are
// routed to their owner shard (any node forwards, guarded against loops by
// the X-Tempartd-Forwarded header), so the fleet behaves like one daemon with
// the union of the shards' caches. Large requests go the other way: the
// owner becomes a coordinator, runs the top of the recursive-bisection tree
// locally, fans the independent subtrees out to peers over POST
// /v1/internal/subtree, and stitches the returned assignments — byte-
// identical to a single-node run, because every subtree's RNG stream is a
// pure function of the root seed and the subtree's position in the tree
// (internal/partition's per-node seed derivation).
//
// Failure handling is local and conservative: per-peer circuit breakers with
// bounded retry/backoff, local recompute as the universal fallback (any
// subtree a peer fails to return is recomputed by the coordinator, with an
// optional hedge that races the recompute against a slow peer), and
// tempartd_cluster_* metrics over all of it. Losing a peer therefore never
// fails a client request — it only costs the latency the peer would have
// absorbed.
package cluster

import (
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Node is one fleet member: a stable id (the ring hashes ids, so renaming a
// node moves its shard) and the base URL peers reach it on.
type Node struct {
	ID  string `json:"id"`
	URL string `json:"url"`
}

// Options configures a cluster member. Zero values take the documented
// defaults.
type Options struct {
	// NodeID is this node's identity; it must appear in Peers.
	NodeID string
	// Peers is the full static membership, this node included (its own URL
	// may be empty — a node never dials itself). Every member must be
	// started with the same list or the rings diverge.
	Peers []Node
	// VirtualNodes is the number of ring points per member. Default 64.
	VirtualNodes int
	// FanoutMinCells gates coordinator mode: requests over meshes with at
	// least this many cells are decomposed across the fleet instead of
	// computed on one node. Default 65536.
	FanoutMinCells int
	// FanoutSubtrees overrides how many independent subtrees a coordinator
	// carves out; 0 means one per healthy member (self included).
	FanoutSubtrees int
	// BreakerThreshold opens a peer's circuit after this many consecutive
	// transport failures. Default 3.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker waits before admitting a
	// half-open probe. Default 5s.
	BreakerCooldown time.Duration
	// RetryAttempts bounds the dials per peer operation (transport errors
	// only — an HTTP response, whatever its status, is never retried).
	// Default 2.
	RetryAttempts int
	// RetryBackoff is the wait between attempts, doubling each retry.
	// Default 50ms.
	RetryBackoff time.Duration
	// ProbeTimeout bounds a peer cache probe. Default 2s.
	ProbeTimeout time.Duration
	// CallTimeout bounds a forwarded request or subtree RPC. Default 2m.
	CallTimeout time.Duration
	// HedgeDelay, when positive, starts a local recompute of a fanned-out
	// subtree if its peer has not answered within the delay; the first
	// result wins (both are byte-identical, so either is safe to commit).
	// 0 disables hedging: the local recompute runs only after the peer
	// definitively fails.
	HedgeDelay time.Duration
	// Transport overrides the HTTP transport (tests).
	Transport http.RoundTripper
}

func (o Options) withDefaults() Options {
	if o.VirtualNodes <= 0 {
		o.VirtualNodes = 64
	}
	if o.FanoutMinCells <= 0 {
		o.FanoutMinCells = 65536
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 3
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 5 * time.Second
	}
	if o.RetryAttempts <= 0 {
		o.RetryAttempts = 2
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 50 * time.Millisecond
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = 2 * time.Second
	}
	if o.CallTimeout <= 0 {
		o.CallTimeout = 2 * time.Minute
	}
	return o
}

// Cluster is one member's view of the fleet: the shared ring, the peer set,
// per-peer breakers, and the client machinery. Safe for concurrent use.
type Cluster struct {
	opts  Options
	self  Node
	nodes []Node // full membership, sorted by id
	peers []Node // nodes minus self, sorted by id
	ring  *ring

	client  *http.Client
	metrics *metricsSet

	mu       sync.Mutex
	breakers map[string]*breaker
}

// New validates the membership and builds this node's view of the fleet.
func New(opts Options) (*Cluster, error) {
	opts = opts.withDefaults()
	if opts.NodeID == "" {
		return nil, fmt.Errorf("cluster: node id is empty")
	}
	if len(opts.Peers) < 2 {
		return nil, fmt.Errorf("cluster: membership has %d nodes, want >= 2 (run without -peers for single-node)", len(opts.Peers))
	}
	nodes := append([]Node(nil), opts.Peers...)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	var self *Node
	seen := map[string]bool{}
	for i := range nodes {
		if nodes[i].ID == "" {
			return nil, fmt.Errorf("cluster: peer %d has an empty id", i)
		}
		if seen[nodes[i].ID] {
			return nil, fmt.Errorf("cluster: duplicate node id %q", nodes[i].ID)
		}
		seen[nodes[i].ID] = true
		if nodes[i].ID == opts.NodeID {
			self = &nodes[i]
		}
	}
	if self == nil {
		return nil, fmt.Errorf("cluster: node id %q is not in the peer list", opts.NodeID)
	}
	c := &Cluster{
		opts:     opts,
		self:     *self,
		nodes:    nodes,
		ring:     buildRing(nodes, opts.VirtualNodes),
		metrics:  newMetricsSet(),
		breakers: map[string]*breaker{},
	}
	for _, n := range nodes {
		if n.ID == opts.NodeID {
			continue
		}
		if n.URL == "" {
			return nil, fmt.Errorf("cluster: peer %q has no URL", n.ID)
		}
		c.peers = append(c.peers, n)
		c.breakers[n.ID] = newBreaker(opts.BreakerThreshold, opts.BreakerCooldown)
	}
	c.client = &http.Client{Transport: opts.Transport}
	return c, nil
}

// SelfID returns this node's identity.
func (c *Cluster) SelfID() string { return c.self.ID }

// Nodes returns the full membership (sorted by id).
func (c *Cluster) Nodes() []Node { return c.nodes }

// Owner maps a content address onto the member that owns its shard. Every
// node computes the same answer from the same membership.
func (c *Cluster) Owner(key [32]byte) Node {
	return c.nodes[c.ring.owner(key)]
}

// OwnsSelf reports whether this node owns the address.
func (c *Cluster) OwnsSelf(key [32]byte) bool {
	return c.Owner(key).ID == c.self.ID
}

// FanoutMinCells exposes the coordinator-mode gate for the server.
func (c *Cluster) FanoutMinCells() int { return c.opts.FanoutMinCells }

// breakerFor returns the peer's breaker (nil for unknown ids, including
// self — callers never dial those).
func (c *Cluster) breakerFor(id string) *breaker {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.breakers[id]
}

// PeerAvailable reports whether the peer's breaker would currently admit a
// call (closed, or open with the cooldown elapsed). It does not consume the
// half-open probe slot — planning code uses it; the call path itself goes
// through allow().
func (c *Cluster) PeerAvailable(id string) bool {
	b := c.breakerFor(id)
	return b != nil && b.available()
}

// healthyPeers returns the peers currently worth dialing, in id order.
func (c *Cluster) healthyPeers() []Node {
	out := make([]Node, 0, len(c.peers))
	for _, p := range c.peers {
		if c.PeerAvailable(p.ID) {
			out = append(out, p)
		}
	}
	return out
}

// HealthyPeerCount reports how many peers are currently worth dialing.
func (c *Cluster) HealthyPeerCount() int { return len(c.healthyPeers()) }
