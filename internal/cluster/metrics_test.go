package cluster

import (
	"strings"
	"testing"
)

// TestClusterMetricsGolden pins the full tempartd_cluster_* exposition:
// names, types, label sets, ordering. Scrape dashboards are written against
// this text — renaming a series is a breaking change and must show up here.
func TestClusterMetricsGolden(t *testing.T) {
	c, err := New(Options{NodeID: "n1", Peers: testNodes()})
	if err != nil {
		t.Fatal(err)
	}
	c.metrics.countForward("n2", "relayed")
	c.metrics.countForward("n2", "relayed")
	c.metrics.countForward("n3", "error")
	c.metrics.countProbe("n2", "hit")
	c.metrics.countProbe("n2", "miss")
	c.metrics.countPeerError("n3", "forward")
	c.metrics.countFanout(map[string]int{"n1": 1, "n2": 2, "n3": 1})
	c.metrics.countHedgedWin("local")
	c.metrics.countHedgedWin("peer")
	c.metrics.countLocalFallback()
	c.metrics.countSubtreeServed()
	// Trip n3's breaker so the gauge shows a non-closed state.
	b := c.breakerFor("n3")
	for i := 0; i < 3; i++ {
		b.onFailure()
	}

	var sb strings.Builder
	c.RenderMetrics(&sb)
	got := sb.String()

	want := `# HELP tempartd_cluster_forwards_total Requests forwarded to their owner shard, by peer and outcome.
# TYPE tempartd_cluster_forwards_total counter
tempartd_cluster_forwards_total{peer="n2",outcome="relayed"} 2
tempartd_cluster_forwards_total{peer="n3",outcome="error"} 1
# HELP tempartd_cluster_probes_total Owner-shard cache probes by peer and outcome (hit, miss, error).
# TYPE tempartd_cluster_probes_total counter
tempartd_cluster_probes_total{peer="n2",outcome="hit"} 1
tempartd_cluster_probes_total{peer="n2",outcome="miss"} 1
# HELP tempartd_cluster_peer_errors_total Peer transport failures by peer and operation.
# TYPE tempartd_cluster_peer_errors_total counter
tempartd_cluster_peer_errors_total{peer="n3",op="forward"} 1
# HELP tempartd_cluster_fanouts_total Coordinator fan-outs started (requests split across the fleet).
# TYPE tempartd_cluster_fanouts_total counter
tempartd_cluster_fanouts_total 1
# HELP tempartd_cluster_fanout_subtrees_total Subtrees dispatched per fleet member by this coordinator (self included).
# TYPE tempartd_cluster_fanout_subtrees_total counter
tempartd_cluster_fanout_subtrees_total{node="n1"} 1
tempartd_cluster_fanout_subtrees_total{node="n2"} 2
tempartd_cluster_fanout_subtrees_total{node="n3"} 1
# HELP tempartd_cluster_hedged_wins_total Hedged subtree races decided, by winner.
# TYPE tempartd_cluster_hedged_wins_total counter
tempartd_cluster_hedged_wins_total{winner="local"} 1
tempartd_cluster_hedged_wins_total{winner="peer"} 1
# HELP tempartd_cluster_local_fallbacks_total Peer-assigned work recomputed locally after peer failure.
# TYPE tempartd_cluster_local_fallbacks_total counter
tempartd_cluster_local_fallbacks_total 1
# HELP tempartd_cluster_subtrees_served_total Subtree RPCs executed on this node for remote coordinators.
# TYPE tempartd_cluster_subtrees_served_total counter
tempartd_cluster_subtrees_served_total 1
# HELP tempartd_cluster_breaker_state Circuit state per peer (0 closed, 1 open, 2 half-open).
# TYPE tempartd_cluster_breaker_state gauge
tempartd_cluster_breaker_state{peer="n2"} 0
tempartd_cluster_breaker_state{peer="n3"} 1
# HELP tempartd_cluster_peers Fleet membership size (self included).
# TYPE tempartd_cluster_peers gauge
tempartd_cluster_peers 3
`
	if got != want {
		t.Fatalf("cluster metrics exposition drifted.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
