package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"
)

// ErrPeerUnavailable is returned when a peer's circuit breaker short-
// circuits a call before any dial is attempted.
var ErrPeerUnavailable = errors.New("cluster: peer circuit open")

// maxPeerResponseBytes bounds what we will buffer from a peer (a partition
// payload over a huge mesh is tens of MB; 1 GiB is a safety net, not a
// budget).
const maxPeerResponseBytes = 1 << 30

// callPeer runs fn under the peer's breaker with bounded retry/backoff.
// Only transport errors (no HTTP response at all) count as breaker failures
// and are retried; fn signals one by returning (false, err). An HTTP
// response of any status is proof of life: fn returns (true, err) and the
// error, if any, surfaces without retry.
func (c *Cluster) callPeer(ctx context.Context, peer Node, op string, fn func() (responded bool, err error)) error {
	b := c.breakerFor(peer.ID)
	if b == nil {
		return fmt.Errorf("cluster: unknown peer %q", peer.ID)
	}
	backoff := c.opts.RetryBackoff
	var lastErr error
	for attempt := 0; attempt < c.opts.RetryAttempts; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(backoff):
			}
			backoff *= 2
		}
		if !b.allow() {
			c.metrics.countPeerError(peer.ID, op+"/breaker")
			if lastErr != nil {
				return fmt.Errorf("%w (after %v)", ErrPeerUnavailable, lastErr)
			}
			return ErrPeerUnavailable
		}
		responded, err := fn()
		if responded {
			b.onSuccess()
			return err
		}
		b.onFailure()
		c.metrics.countPeerError(peer.ID, op)
		lastErr = err
		if ctx.Err() != nil {
			return ctx.Err()
		}
	}
	return fmt.Errorf("cluster: peer %s %s failed after %d attempts: %w", peer.ID, op, c.opts.RetryAttempts, lastErr)
}

// ForwardResult is the owner shard's answer, relayed verbatim to the client.
type ForwardResult struct {
	Status      int
	ContentType string
	CacheHeader string // peer's X-Tempartd-Cache, if any
	Body        []byte
}

// Forward replays a client request body against the owner shard and returns
// its response for relaying. The hop guard header carries our id so the
// owner never forwards again, and the request id and trace context ride
// along for cross-node tracing.
func (c *Cluster) Forward(ctx context.Context, peer Node, path, rawQuery, contentType, requestID, traceHeader string, body []byte) (*ForwardResult, error) {
	var out *ForwardResult
	err := c.callPeer(ctx, peer, "forward", func() (bool, error) {
		cctx, cancel := context.WithTimeout(ctx, c.opts.CallTimeout)
		defer cancel()
		url := peer.URL + path
		if rawQuery != "" {
			url += "?" + rawQuery
		}
		req, err := http.NewRequestWithContext(cctx, http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return true, err // malformed URL: not the peer's fault, don't trip the breaker
		}
		req.Header.Set("Content-Type", contentType)
		req.Header.Set(HeaderForwarded, c.self.ID)
		if requestID != "" {
			req.Header.Set(HeaderRequestID, requestID)
		}
		if traceHeader != "" {
			req.Header.Set(HeaderTrace, traceHeader)
		}
		resp, err := c.client.Do(req)
		if err != nil {
			return false, err
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerResponseBytes))
		if err != nil {
			return false, fmt.Errorf("reading forwarded response: %w", err)
		}
		out = &ForwardResult{
			Status:      resp.StatusCode,
			ContentType: resp.Header.Get("Content-Type"),
			CacheHeader: resp.Header.Get("X-Tempartd-Cache"),
			Body:        raw,
		}
		return true, nil
	})
	if err != nil {
		c.metrics.countForward(peer.ID, "error")
		return nil, err
	}
	outcome := "relayed"
	if out.Status >= 500 {
		outcome = "peer-5xx"
	}
	c.metrics.countForward(peer.ID, outcome)
	return out, nil
}

// ProbeCache asks the owner shard whether it has a cached result for the
// content address. A miss is (nil, false, nil) — only transport trouble is
// an error. Used by nodes that are about to compute a key they do not own
// (hop-guarded forwards land here), so a warm owner cache saves the compute.
func (c *Cluster) ProbeCache(ctx context.Context, peer Node, keyHex, requestID, traceHeader string) ([]byte, bool, error) {
	var payload []byte
	var hit bool
	err := c.callPeer(ctx, peer, "probe", func() (bool, error) {
		cctx, cancel := context.WithTimeout(ctx, c.opts.ProbeTimeout)
		defer cancel()
		req, err := http.NewRequestWithContext(cctx, http.MethodGet, peer.URL+"/v1/internal/cache/"+keyHex, nil)
		if err != nil {
			return true, err
		}
		if requestID != "" {
			req.Header.Set(HeaderRequestID, requestID)
		}
		if traceHeader != "" {
			req.Header.Set(HeaderTrace, traceHeader)
		}
		resp, err := c.client.Do(req)
		if err != nil {
			return false, err
		}
		defer resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			raw, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerResponseBytes))
			if err != nil {
				return false, fmt.Errorf("reading probe response: %w", err)
			}
			payload, hit = raw, true
			return true, nil
		case http.StatusNotFound:
			return true, nil
		default:
			return true, fmt.Errorf("cluster: cache probe: peer %s returned %d", peer.ID, resp.StatusCode)
		}
	})
	if err != nil {
		c.metrics.countProbe(peer.ID, "error")
		return nil, false, err
	}
	if hit {
		c.metrics.countProbe(peer.ID, "hit")
	} else {
		c.metrics.countProbe(peer.ID, "miss")
	}
	return payload, hit, nil
}

// Subtree executes one bisection-subtree task on a peer and returns the
// per-vertex assignments (aligned with the wire task's vertex order) plus
// the decoded reply (executing node id, and — for sampled trace contexts —
// the peer's span snapshot for stitching).
func (c *Cluster) Subtree(ctx context.Context, peer Node, wire *SubtreeWire, requestID, traceHeader string) ([]int32, *SubtreeReply, error) {
	body, err := json.Marshal(wire)
	if err != nil {
		return nil, nil, err
	}
	var vals []int32
	var reply SubtreeReply
	err = c.callPeer(ctx, peer, "subtree", func() (bool, error) {
		cctx, cancel := context.WithTimeout(ctx, c.opts.CallTimeout)
		defer cancel()
		req, err := http.NewRequestWithContext(cctx, http.MethodPost, peer.URL+"/v1/internal/subtree", bytes.NewReader(body))
		if err != nil {
			return true, err
		}
		req.Header.Set("Content-Type", "application/json")
		if requestID != "" {
			req.Header.Set(HeaderRequestID, requestID)
		}
		if traceHeader != "" {
			req.Header.Set(HeaderTrace, traceHeader)
		}
		resp, err := c.client.Do(req)
		if err != nil {
			return false, err
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerResponseBytes))
		if err != nil {
			return false, fmt.Errorf("reading subtree response: %w", err)
		}
		if resp.StatusCode != http.StatusOK {
			return true, fmt.Errorf("cluster: subtree: peer %s returned %d: %.200s", peer.ID, resp.StatusCode, raw)
		}
		reply = SubtreeReply{}
		if err := json.Unmarshal(raw, &reply); err != nil {
			return true, fmt.Errorf("cluster: subtree: decoding peer %s reply: %w", peer.ID, err)
		}
		vals, err = UnpackInt32s(reply.Parts)
		if err != nil {
			return true, err
		}
		if want := len(wire.Vertices) / 4; len(vals) != want {
			return true, fmt.Errorf("cluster: subtree: peer %s returned %d assignments for %d vertices", peer.ID, len(vals), want)
		}
		return true, nil
	})
	if err != nil {
		return nil, nil, err
	}
	return vals, &reply, nil
}
