package cluster

import (
	"testing"
	"time"
)

// TestBreakerLifecycle walks the full circuit: closed under success, opens
// after N consecutive failures, short-circuits while cooling, admits exactly
// one half-open probe after the cooldown, and either closes on probe success
// or re-opens (with a fresh cooldown) on probe failure.
func TestBreakerLifecycle(t *testing.T) {
	now := time.Unix(1000, 0)
	b := newBreaker(3, 5*time.Second)
	b.now = func() time.Time { return now }

	for i := 0; i < 10; i++ {
		if !b.allow() {
			t.Fatalf("closed breaker denied call %d", i)
		}
		b.onSuccess()
	}
	if b.currentState() != BreakerClosed {
		t.Fatalf("state after successes = %v, want closed", b.currentState())
	}

	// Two failures: still closed (threshold is 3).
	b.onFailure()
	b.onFailure()
	if b.currentState() != BreakerClosed || !b.allow() {
		t.Fatal("breaker opened below threshold")
	}
	b.onFailure()
	if b.currentState() != BreakerOpen {
		t.Fatalf("state after %d failures = %v, want open", 3, b.currentState())
	}
	if b.allow() || b.available() {
		t.Fatal("open breaker admitted a call inside the cooldown")
	}

	// Cooldown elapses: exactly one probe gets through.
	now = now.Add(5 * time.Second)
	if !b.available() {
		t.Fatal("breaker not available after cooldown")
	}
	if !b.allow() {
		t.Fatal("breaker denied the half-open probe")
	}
	if b.currentState() != BreakerHalfOpen {
		t.Fatalf("state during probe = %v, want half-open", b.currentState())
	}
	if b.allow() {
		t.Fatal("breaker admitted a second concurrent probe")
	}

	// Probe fails: back to open with a fresh cooldown.
	b.onFailure()
	if b.currentState() != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", b.currentState())
	}
	if b.allow() {
		t.Fatal("breaker admitted a call right after a failed probe")
	}
	now = now.Add(5 * time.Second)
	if !b.allow() {
		t.Fatal("breaker denied the second probe after a fresh cooldown")
	}
	b.onSuccess()
	if b.currentState() != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", b.currentState())
	}
	if !b.allow() {
		t.Fatal("closed breaker denied a call after recovery")
	}
}

// TestBreakerSuccessResetsFailureCount checks that interleaved successes
// keep a flaky-but-mostly-working peer's circuit closed: only consecutive
// failures open it.
func TestBreakerSuccessResetsFailureCount(t *testing.T) {
	b := newBreaker(3, time.Second)
	for i := 0; i < 20; i++ {
		b.onFailure()
		b.onFailure()
		b.onSuccess()
	}
	if b.currentState() != BreakerClosed {
		t.Fatalf("state = %v, want closed (failures never consecutive)", b.currentState())
	}
}
