package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// The ring is the only routing state in the fleet, and it is derived purely
// from the sorted membership ids — no gossip, no rebalancing protocol. Each
// member contributes VirtualNodes points at sha256(id + "#" + i); a content
// address is owned by the member whose point is the first at or clockwise
// from the address's first 8 bytes. With 64 virtual points per member the
// shard sizes are within a few percent of even for small fleets, which is
// all the balance a cache-routing ring needs.

type ringPoint struct {
	hash uint64
	node int // index into Cluster.nodes
}

type ring struct {
	points []ringPoint
}

func buildRing(nodes []Node, vnodes int) *ring {
	pts := make([]ringPoint, 0, len(nodes)*vnodes)
	for ni, n := range nodes {
		for i := 0; i < vnodes; i++ {
			sum := sha256.Sum256([]byte(n.ID + "#" + strconv.Itoa(i)))
			pts = append(pts, ringPoint{hash: binary.BigEndian.Uint64(sum[:8]), node: ni})
		}
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].hash != pts[j].hash {
			return pts[i].hash < pts[j].hash
		}
		// Hash ties (astronomically rare) break on node index, which is
		// id-sorted, so every member still orders them identically.
		return pts[i].node < pts[j].node
	})
	return &ring{points: pts}
}

// owner returns the index (into the membership slice the ring was built
// from) of the node owning the content address.
func (r *ring) owner(key [32]byte) int {
	h := binary.BigEndian.Uint64(key[:8])
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the ring is circular
	}
	return r.points[i].node
}
