package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"testing"
)

func testNodes() []Node {
	return []Node{
		{ID: "n1", URL: "http://a"},
		{ID: "n2", URL: "http://b"},
		{ID: "n3", URL: "http://c"},
	}
}

// TestRingAgreesAcrossMembers pins the no-consensus contract: every member
// derives the identical ring from the membership ids alone, regardless of
// the order the peer list was written in.
func TestRingAgreesAcrossMembers(t *testing.T) {
	a, err := New(Options{NodeID: "n1", Peers: testNodes()})
	if err != nil {
		t.Fatal(err)
	}
	shuffled := []Node{testNodes()[2], testNodes()[0], testNodes()[1]}
	b, err := New(Options{NodeID: "n3", Peers: shuffled})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		key := sha256.Sum256([]byte{byte(i), byte(i >> 8)})
		if ao, bo := a.Owner(key).ID, b.Owner(key).ID; ao != bo {
			t.Fatalf("key %d: n1 routes to %s, n3 routes to %s", i, ao, bo)
		}
	}
}

// TestRingBalance checks that virtual nodes spread ownership roughly evenly:
// with 3 members no shard should own more than half of a large key sample.
func TestRingBalance(t *testing.T) {
	c, err := New(Options{NodeID: "n1", Peers: testNodes()})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const samples = 3000
	for i := 0; i < samples; i++ {
		var key [32]byte
		binary.LittleEndian.PutUint64(key[:8], uint64(i)*0x9e3779b97f4a7c15)
		counts[c.Owner(key).ID]++
	}
	for id, n := range counts {
		if n == 0 || n > samples/2 {
			t.Fatalf("shard %s owns %d/%d keys: ring badly unbalanced (%v)", id, n, samples, counts)
		}
	}
	if len(counts) != 3 {
		t.Fatalf("only %d shards own keys: %v", len(counts), counts)
	}
}

// TestRingWraps exercises the circular lookup: a key hashing past the last
// point must land on the first.
func TestRingWraps(t *testing.T) {
	r := buildRing(testNodes(), 4)
	var key [32]byte
	for i := range key[:8] {
		key[i] = 0xff
	}
	if got := r.owner(key); got != r.points[0].node {
		// Only fails if 0xffff... is below the max point, which sha256 makes
		// effectively impossible with 12 points.
		if binary.BigEndian.Uint64(key[:8]) > r.points[len(r.points)-1].hash {
			t.Fatalf("wrap lookup returned node %d, want first point's node %d", got, r.points[0].node)
		}
	}
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name string
		opts Options
	}{
		{"self missing", Options{NodeID: "nx", Peers: testNodes()}},
		{"duplicate id", Options{NodeID: "n1", Peers: []Node{{ID: "n1", URL: "u"}, {ID: "n1", URL: "v"}}}},
		{"single node", Options{NodeID: "n1", Peers: []Node{{ID: "n1"}}}},
		{"peer without url", Options{NodeID: "n1", Peers: []Node{{ID: "n1"}, {ID: "n2"}}}},
	}
	for _, tc := range cases {
		if _, err := New(tc.opts); err == nil {
			t.Errorf("%s: New accepted invalid membership", tc.name)
		}
	}
}

func TestPackInt32sRoundTrip(t *testing.T) {
	vals := []int32{0, 1, -1, 1 << 30, -(1 << 30), 42}
	got, err := UnpackInt32s(PackInt32s(vals))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(vals) {
		t.Fatalf("round trip changed length: %d -> %d", len(vals), len(got))
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("value %d: %d != %d", i, got[i], vals[i])
		}
	}
	if _, err := UnpackInt32s([]byte{1, 2, 3}); err == nil {
		t.Fatal("UnpackInt32s accepted a non-multiple-of-4 payload")
	}
}
