package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"tempart/internal/graph"
	"tempart/internal/obs"
	"tempart/internal/partition"
)

// ErrNoPeers is returned when a fan-out is requested but every peer's
// breaker is open; callers fall back to a plain local partition.
var ErrNoPeers = errors.New("cluster: no healthy peers for fan-out")

// FanoutRequest carries everything a coordinator needs to split one
// partition request across the fleet.
type FanoutRequest struct {
	// Mesh identifies the mesh for peers (generator name or raw TMSH).
	Mesh MeshRef
	// Strategy is the canonical strategy label peers rebuild the dual graph
	// from.
	Strategy string
	// Wire is the option subset shipped to peers.
	Wire WireOptions
	// Options are the locally resolved options; they must agree with Wire on
	// every result-affecting field (Parallelism is free to differ).
	Options partition.Options
	// K is the total part count.
	K int
	// RequestID propagates the client's request id to every peer hop.
	RequestID string
	// Trace is the request's trace context, forwarded on every subtree RPC.
	// When Sampled is set, peers run their subtree with a recorder attached
	// and ship the span snapshot back; the coordinator grafts it (node-
	// stamped, clock-offset-adjusted) under its per-RPC span.
	Trace obs.TraceContext
}

// subtreeOutcome reports one fanned-out task for spans/metrics.
type subtreeOutcome struct {
	task     partition.SubtreeTask
	node     string // member that produced the committed result
	fellBack bool
}

// FanoutPartition partitions g into req.K parts by running the top of the
// recursive-bisection tree locally, shipping the frontier subtrees to peers,
// and stitching the replies. The result is byte-identical to
// partition.Partition with the same options: every subtree's RNG stream is
// derived from its tree position, never from where it executes.
//
// Peer failures never surface to the caller: any subtree a peer cannot
// deliver is recomputed locally (optionally hedged — a local recompute races
// a slow peer and the first result wins). Only context cancellation and
// graph-level errors come back as errors.
func (c *Cluster) FanoutPartition(ctx context.Context, g *graph.Graph, req FanoutRequest) (*partition.Result, error) {
	members := append([]Node{c.self}, c.healthyPeers()...)
	if len(members) < 2 {
		return nil, ErrNoPeers
	}
	span := obs.StartSpan(ctx, "cluster/fanout")
	if span.Active() {
		span.SetStr("coordinator", c.self.ID)
		span.SetInt("k", int64(req.K))
		span.SetInt("members", int64(len(members)))
		ctx = obs.ContextWithSpan(ctx, span)
	}
	defer span.End()

	target := c.opts.FanoutSubtrees
	if target <= 0 {
		target = len(members)
	}
	part, tasks, err := partition.SplitSubtrees(ctx, g, req.K, req.Options, target)
	if err != nil {
		return nil, err
	}
	// Deterministic round-robin over (FirstPart-sorted tasks, id-sorted
	// members with self first): the placement itself never affects bytes,
	// but a stable plan makes fan-out metrics and spans comparable across
	// runs.
	sort.Slice(tasks, func(i, j int) bool { return tasks[i].FirstPart < tasks[j].FirstPart })
	plan := make(map[string]int, len(members))
	for i := range tasks {
		plan[members[i%len(members)].ID]++
	}
	c.metrics.countFanout(plan)
	if span.Active() {
		span.SetInt("subtrees", int64(len(tasks)))
	}

	var wg sync.WaitGroup
	errs := make([]error, len(tasks))
	outcomes := make([]subtreeOutcome, len(tasks))
	for i, t := range tasks {
		member := members[i%len(members)]
		wg.Add(1)
		go func(i int, t partition.SubtreeTask, member Node) {
			defer wg.Done()
			if member.ID == c.self.ID {
				errs[i] = partition.PartitionSubtree(ctx, g, t, req.Options, part)
				outcomes[i] = subtreeOutcome{task: t, node: c.self.ID}
				return
			}
			outcomes[i], errs[i] = c.remoteSubtree(ctx, g, t, member, req, part)
		}(i, t, member)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if span.Active() {
		for _, o := range outcomes {
			sub := span.Start("cluster/fanout/subtree")
			sub.SetInt("first_part", int64(o.task.FirstPart))
			sub.SetInt("k", int64(o.task.K))
			sub.SetInt("vertices", int64(len(o.task.Vertices)))
			sub.SetStr("node", o.node)
			if o.fellBack {
				sub.SetInt("local_fallback", 1)
			}
			sub.End()
		}
	}
	// Same cross-boundary polish Partition applies after its own recursion;
	// without it the stitched assignment would diverge from a local run.
	partition.PolishRB(ctx, g, part, req.K, req.Options)
	return partition.NewResult(g, part, req.K), nil
}

// remoteSubtree ships one task to a peer and commits the reply into part.
// On peer failure it recomputes locally; with hedging enabled the local
// recompute starts after HedgeDelay and races the peer. Exactly one commit
// happens, from this goroutine, so concurrent subtree writes stay disjoint.
func (c *Cluster) remoteSubtree(ctx context.Context, g *graph.Graph, t partition.SubtreeTask, peer Node, req FanoutRequest, part []int32) (subtreeOutcome, error) {
	wire := &SubtreeWire{
		Mesh:      req.Mesh,
		Strategy:  req.Strategy,
		Options:   req.Wire,
		FirstPart: t.FirstPart,
		K:         t.K,
		Seed:      t.Seed,
		Vertices:  PackInt32s(t.Vertices),
	}
	type remoteRes struct {
		vals []int32
		node string
		err  error
	}
	type localRes struct {
		vals []int32
		err  error
	}
	traceHeader := ""
	if req.Trace.Valid() {
		traceHeader = req.Trace.Header()
	}
	resCh := make(chan remoteRes, 1)
	go func() {
		// The per-RPC span brackets the wire round trip; a sampled peer's
		// snapshot is grafted under it, shifted so the midpoint of the
		// peer's recorded activity aligns with the midpoint of our
		// [send, recv] window (obs.ClockOffset). Grafting happens on reply
		// receipt even if a hedge wins the race — the trace then shows the
		// losing RPC too, which is the point of tracing.
		rec := obs.FromContext(ctx)
		rpc := obs.StartSpan(ctx, "cluster/fanout/rpc")
		if rpc.Active() {
			rpc.SetStr("peer", peer.ID)
			rpc.SetInt("first_part", int64(t.FirstPart))
			rpc.SetInt("vertices", int64(len(t.Vertices)))
		}
		sendNs := rec.NowNs()
		vals, reply, err := c.Subtree(ctx, peer, wire, req.RequestID, traceHeader)
		node := ""
		if reply != nil {
			node = reply.NodeID
			if err == nil && len(reply.Spans) > 0 && rec.Enabled() {
				recvNs := rec.NowNs()
				offset := obs.ClockOffset(sendNs, recvNs, reply.Spans)
				rec.Graft(rpc, reply.NodeID, reply.Spans, offset)
			}
		}
		rpc.End()
		resCh <- remoteRes{vals, node, err}
	}()
	// The hedge computes into a private buffer: the winning side commits
	// from this goroutine only, so remote replies and hedges never race on
	// the shared part array.
	hedge := func() localRes {
		priv := make([]int32, g.NumVertices())
		if err := partition.PartitionSubtree(ctx, g, t, req.Options, priv); err != nil {
			return localRes{err: err}
		}
		vals := make([]int32, len(t.Vertices))
		for i, v := range t.Vertices {
			vals[i] = priv[v]
		}
		return localRes{vals: vals}
	}
	commit := func(vals []int32) {
		for i, v := range t.Vertices {
			part[v] = vals[i]
		}
	}

	var hedgeCh chan localRes
	var hedgeTimer <-chan time.Time
	if c.opts.HedgeDelay > 0 {
		timer := time.NewTimer(c.opts.HedgeDelay)
		defer timer.Stop()
		hedgeTimer = timer.C
	}
	for {
		select {
		case r := <-resCh:
			if r.err == nil {
				commit(r.vals)
				if hedgeCh != nil {
					c.metrics.countHedgedWin("peer")
				}
				return subtreeOutcome{task: t, node: r.node}, nil
			}
			// Peer definitively failed. Use the hedge if one is running,
			// else recompute inline — either way the request survives.
			c.metrics.countLocalFallback()
			var lr localRes
			if hedgeCh != nil {
				lr = <-hedgeCh
			} else {
				lr = hedge()
			}
			if lr.err != nil {
				return subtreeOutcome{}, fmt.Errorf("cluster: subtree fallback after peer %s failure (%v): %w", peer.ID, r.err, lr.err)
			}
			commit(lr.vals)
			return subtreeOutcome{task: t, node: c.self.ID, fellBack: true}, nil
		case <-hedgeTimer:
			hedgeTimer = nil
			hedgeCh = make(chan localRes, 1)
			go func() { hedgeCh <- hedge() }()
		case lr := <-hedgeCh:
			if lr.err != nil {
				// A hedge only fails on context cancellation, which dooms
				// the remote call too; report the root cause.
				return subtreeOutcome{}, lr.err
			}
			commit(lr.vals)
			c.metrics.countHedgedWin("local")
			return subtreeOutcome{task: t, node: c.self.ID}, nil
		}
	}
}
