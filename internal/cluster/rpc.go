package cluster

import (
	"encoding/binary"
	"fmt"

	"tempart/internal/obs"
)

// Wire types for POST /v1/internal/subtree. The subtree RPC ships a node of
// the recursive-bisection tree to a peer: which mesh (by generator name or
// raw TMSH bytes — the coordinator sends whichever identity it was given, so
// the peer rebuilds the identical dual graph), which strategy/options, and
// the frontier task itself (vertex set, first part index, part count, derived
// seed). The reply is the per-vertex assignment aligned with the request's
// vertex order. Vertex and part arrays travel as base64 little-endian int32
// — JSON numbers would triple the payload for large subtrees.

// HeaderForwarded is the hop guard: a node forwarding a request to its owner
// shard stamps its own id here, and no node ever re-forwards a request that
// carries the header. One hop reaches the owner from anywhere (every member
// has the full membership), so anything longer is a routing bug, not a path.
const HeaderForwarded = "X-Tempartd-Forwarded"

// HeaderRequestID propagates the client's request id across peer hops so a
// fleet-wide trace can be stitched from per-node access logs and manifests.
const HeaderRequestID = "X-Request-Id"

// HeaderTrace carries the compact trace context (obs.TraceContext wire form:
// trace id, parent span, sampling bit) on every peer hop next to the request
// id. A sampled subtree RPC runs on the peer with a recorder attached and
// ships its span snapshot back in the reply for stitching.
const HeaderTrace = "X-Tempartd-Trace"

// MeshRef identifies the mesh a subtree task is over. Exactly one of Gen or
// TMSH is set.
type MeshRef struct {
	// Gen names a built-in generator (with Scale), the common case.
	Gen   string  `json:"gen,omitempty"`
	Scale float64 `json:"scale,omitempty"`
	// TMSH carries an uploaded mesh verbatim.
	TMSH []byte `json:"tmsh,omitempty"`
}

// WireOptions is the subset of partition.Options that affects a subtree's
// result. Parallelism is deliberately absent: results are byte-identical at
// any parallelism, so each node runs subtrees at its own configured width.
type WireOptions struct {
	Seed         int64   `json:"seed,omitempty"`
	ImbalanceTol float64 `json:"imbalance_tol,omitempty"`
	CoarsenTo    int     `json:"coarsen_to,omitempty"`
	InitTrials   int     `json:"init_trials,omitempty"`
	RefinePasses int     `json:"refine_passes,omitempty"`
}

// SubtreeWire is the request body of POST /v1/internal/subtree.
type SubtreeWire struct {
	Mesh      MeshRef     `json:"mesh"`
	Strategy  string      `json:"strategy"`
	Options   WireOptions `json:"options"`
	FirstPart int         `json:"first_part"`
	K         int         `json:"k"`
	Seed      int64       `json:"seed"`
	// Vertices is the subtree's vertex set, packed little-endian int32.
	Vertices []byte `json:"vertices_i32"`
}

// SubtreeReply is the response body: Parts[i] is the part assigned to the
// i-th vertex of the request's Vertices array, packed little-endian int32.
type SubtreeReply struct {
	// NodeID names the member that computed the subtree (for fan-out spans
	// and cross-node provenance assertions).
	NodeID string `json:"node_id"`
	Parts  []byte `json:"parts_i32"`
	// Spans is the executing node's span snapshot, present only when the
	// request carried a sampled trace context. Times are nanosecond offsets
	// from the peer recorder's epoch; the coordinator clock-adjusts and
	// grafts them under its own fan-out span (obs.ClockOffset, obs.Graft).
	// Replies carrying spans are never cached or persisted by the peer —
	// they come from a private job, exactly like ?debug=trace responses.
	Spans []obs.SpanRecord `json:"spans,omitempty"`
}

// PackInt32s encodes values as little-endian int32 bytes (base64 once JSON-
// encoded; ~5.3 bytes per vertex instead of ~8-12 for decimal JSON).
func PackInt32s(vals []int32) []byte {
	out := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(out[4*i:], uint32(v))
	}
	return out
}

// UnpackInt32s decodes a PackInt32s payload.
func UnpackInt32s(raw []byte) ([]int32, error) {
	if len(raw)%4 != 0 {
		return nil, fmt.Errorf("cluster: packed int32 payload is %d bytes, not a multiple of 4", len(raw))
	}
	out := make([]int32, len(raw)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	return out, nil
}
