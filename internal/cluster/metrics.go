package cluster

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// metricsSet collects the tempartd_cluster_* counters. Like the server's
// metric set it is rendered by hand in Prometheus text exposition format
// with sorted label sets, so the output is deterministic and golden-testable.
// Breaker states and peer counts are gauges sampled at render time from the
// cluster itself rather than stored here.
type metricsSet struct {
	mu sync.Mutex

	forwards   map[string]int64 // "peer|outcome" -> requests forwarded to owner shards
	probes     map[string]int64 // "peer|outcome" -> owner cache probes
	peerErrors map[string]int64 // "peer|op" -> transport failures by operation
	subtrees   map[string]int64 // node -> subtrees executed per fleet member in our fan-outs
	hedgedWins map[string]int64 // winner ("local"|"peer") -> hedged subtree races decided

	fanouts        int64 // coordinator fan-outs started
	localFallbacks int64 // peer work recomputed locally after peer failure
	subtreesServed int64 // subtree RPCs this node executed for some coordinator
}

func newMetricsSet() *metricsSet {
	return &metricsSet{
		forwards:   map[string]int64{},
		probes:     map[string]int64{},
		peerErrors: map[string]int64{},
		subtrees:   map[string]int64{},
		hedgedWins: map[string]int64{},
	}
}

func (m *metricsSet) countForward(peer, outcome string) {
	m.mu.Lock()
	m.forwards[peer+"|"+outcome]++
	m.mu.Unlock()
}

func (m *metricsSet) countProbe(peer, outcome string) {
	m.mu.Lock()
	m.probes[peer+"|"+outcome]++
	m.mu.Unlock()
}

func (m *metricsSet) countPeerError(peer, op string) {
	m.mu.Lock()
	m.peerErrors[peer+"|"+op]++
	m.mu.Unlock()
}

func (m *metricsSet) countFanout(assignments map[string]int) {
	m.mu.Lock()
	m.fanouts++
	for node, n := range assignments {
		m.subtrees[node] += int64(n)
	}
	m.mu.Unlock()
}

func (m *metricsSet) countHedgedWin(winner string) {
	m.mu.Lock()
	m.hedgedWins[winner]++
	m.mu.Unlock()
}

func (m *metricsSet) countLocalFallback() { m.mu.Lock(); m.localFallbacks++; m.mu.Unlock() }
func (m *metricsSet) countSubtreeServed() { m.mu.Lock(); m.subtreesServed++; m.mu.Unlock() }

// CountSubtreeServed is the server-side hook: the subtree RPC handler lives
// in internal/server but the tally belongs with the rest of the fleet
// metrics.
func (c *Cluster) CountSubtreeServed() { c.metrics.countSubtreeServed() }

// RenderMetrics writes the tempartd_cluster_* series in Prometheus text
// exposition format. Output ordering is deterministic.
func (c *Cluster) RenderMetrics(w io.Writer) {
	m := c.metrics
	m.mu.Lock()
	defer m.mu.Unlock()

	writeSorted := func(name, help string, vals map[string]int64, label string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		keys := make([]string, 0, len(vals))
		for k := range vals {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(w, "%s{%s} %d\n", name, fmt.Sprintf(label, splitLabelKey(k)...), vals[k])
		}
	}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}

	writeSorted("tempartd_cluster_forwards_total", "Requests forwarded to their owner shard, by peer and outcome.",
		m.forwards, `peer=%q,outcome=%q`)
	writeSorted("tempartd_cluster_probes_total", "Owner-shard cache probes by peer and outcome (hit, miss, error).",
		m.probes, `peer=%q,outcome=%q`)
	writeSorted("tempartd_cluster_peer_errors_total", "Peer transport failures by peer and operation.",
		m.peerErrors, `peer=%q,op=%q`)
	counter("tempartd_cluster_fanouts_total", "Coordinator fan-outs started (requests split across the fleet).", m.fanouts)
	writeSorted("tempartd_cluster_fanout_subtrees_total", "Subtrees dispatched per fleet member by this coordinator (self included).",
		m.subtrees, `node=%q`)
	writeSorted("tempartd_cluster_hedged_wins_total", "Hedged subtree races decided, by winner.",
		m.hedgedWins, `winner=%q`)
	counter("tempartd_cluster_local_fallbacks_total", "Peer-assigned work recomputed locally after peer failure.", m.localFallbacks)
	counter("tempartd_cluster_subtrees_served_total", "Subtree RPCs executed on this node for remote coordinators.", m.subtreesServed)

	fmt.Fprintf(w, "# HELP tempartd_cluster_breaker_state Circuit state per peer (0 closed, 1 open, 2 half-open).\n")
	fmt.Fprintf(w, "# TYPE tempartd_cluster_breaker_state gauge\n")
	for _, p := range c.peers { // already id-sorted
		fmt.Fprintf(w, "tempartd_cluster_breaker_state{peer=%q} %d\n", p.ID, int(c.breakerFor(p.ID).currentState()))
	}
	fmt.Fprintf(w, "# HELP tempartd_cluster_peers Fleet membership size (self included).\n")
	fmt.Fprintf(w, "# TYPE tempartd_cluster_peers gauge\ntempartd_cluster_peers %d\n", len(c.nodes))
}

// splitLabelKey turns a '|'-joined key into label values for the format
// string (mirrors the server renderer's helper).
func splitLabelKey(k string) []any {
	out := []any{}
	start := 0
	for i := 0; i < len(k); i++ {
		if k[i] == '|' {
			out = append(out, k[start:i])
			start = i + 1
		}
	}
	return append(out, k[start:])
}
