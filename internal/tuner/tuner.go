// Package tuner implements the paper's first perspective (§IX): automatically
// determining the best domain granularity for a target machine. The user
// supplies the mesh, the partitioning strategy and the cluster shape; the
// tuner sweeps candidate domain counts, evaluates each candidate's simulated
// schedule (optionally with communication costs) through FLUSIM, and returns
// the best trade-off.
//
// The search space is geometric — domain counts are multiples of the process
// count, doubling from one domain per process up to a work-imposed ceiling —
// because schedule quality varies smoothly with granularity while
// partitioning cost grows with k.
package tuner

import (
	"context"
	"fmt"
	"math"

	"tempart/internal/eval"
	"tempart/internal/flusim"
	"tempart/internal/mesh"
	"tempart/internal/partition"
)

// Config parameterises the search.
type Config struct {
	// Cluster is the target machine.
	Cluster flusim.Cluster
	// Strategy is the partitioning criterion to tune.
	Strategy partition.Strategy
	// PartOpts seeds the partitioner.
	PartOpts partition.Options
	// CommLatency, when positive, charges every cross-process dependency
	// edge this many time units in the evaluation — making the tuner prefer
	// coarser decompositions when communication is expensive.
	CommLatency int64
	// MaxDomainsPerProc caps the sweep; defaults to 32.
	MaxDomainsPerProc int
	// MinCellsPerDomain stops the sweep before domains become degenerate;
	// defaults to 32.
	MinCellsPerDomain int
}

func (c Config) withDefaults() Config {
	if c.MaxDomainsPerProc <= 0 {
		c.MaxDomainsPerProc = 32
	}
	if c.MinCellsPerDomain <= 0 {
		c.MinCellsPerDomain = 32
	}
	return c
}

// Candidate is one evaluated granularity.
type Candidate struct {
	Domains    int
	Makespan   int64
	CommVolume int64
	NumTasks   int
	// Efficiency is work / (makespan · cores).
	Efficiency float64
}

// Result is the tuner's outcome.
type Result struct {
	Best       Candidate
	Candidates []Candidate
}

// Tune sweeps domain counts for the mesh on the target cluster and returns
// the candidate with the smallest simulated makespan (ties broken toward
// fewer domains, which means less communication and runtime overhead).
func Tune(ctx context.Context, m *mesh.Mesh, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Cluster.NumProcs < 1 {
		return nil, fmt.Errorf("tuner: NumProcs = %d", cfg.Cluster.NumProcs)
	}
	res := &Result{}
	// Trial scoring goes through the shared evaluation facade: graphs build
	// with the same parallelism the partitioner uses, and each candidate's
	// graph is cached for the lifetime of the sweep.
	ev := eval.New(eval.Options{Parallelism: cfg.PartOpts.Parallelism})

	for perProc := 1; perProc <= cfg.MaxDomainsPerProc; perProc *= 2 {
		domains := perProc * cfg.Cluster.NumProcs
		if m.NumCells()/domains < cfg.MinCellsPerDomain {
			break
		}
		part, err := partition.PartitionMesh(ctx, m, domains, cfg.Strategy, cfg.PartOpts)
		if err != nil {
			return nil, fmt.Errorf("tuner: k=%d: %w", domains, err)
		}
		out, err := ev.Evaluate(eval.Spec{
			Mesh: m, Part: part.Part, NumDomains: domains,
			ProcOf: flusim.BlockMap(domains, cfg.Cluster.NumProcs),
			Sim: flusim.Config{
				Cluster:     cfg.Cluster,
				CommLatency: cfg.CommLatency,
			},
		})
		if err != nil {
			return nil, fmt.Errorf("tuner: k=%d: %w", domains, err)
		}
		res.Candidates = append(res.Candidates, Candidate{
			Domains:    domains,
			Makespan:   out.Makespan,
			CommVolume: out.CommVolume,
			NumTasks:   out.NumTasks,
			Efficiency: out.Efficiency,
		})
	}
	if len(res.Candidates) == 0 {
		return nil, fmt.Errorf("tuner: no feasible domain count (mesh of %d cells too small for %d processes)",
			m.NumCells(), cfg.Cluster.NumProcs)
	}
	best := res.Candidates[0]
	for _, c := range res.Candidates[1:] {
		if c.Makespan < best.Makespan {
			best = c
		}
	}
	res.Best = best
	return res, nil
}

// String renders the sweep as a table.
func (r *Result) String() string {
	out := fmt.Sprintf("%8s %12s %10s %10s %6s\n", "domains", "makespan", "comm", "tasks", "eff")
	for _, c := range r.Candidates {
		marker := " "
		if c.Domains == r.Best.Domains {
			marker = "*"
		}
		out += fmt.Sprintf("%7d%s %12d %10d %10d %6.2f\n",
			c.Domains, marker, c.Makespan, c.CommVolume, c.NumTasks, c.Efficiency)
	}
	return out
}

// SpeedupOverSinglePerProc reports Best's improvement over the coarsest
// candidate (1 domain per process); >1 means finer granularity paid off.
func (r *Result) SpeedupOverSinglePerProc() float64 {
	if len(r.Candidates) == 0 || r.Best.Makespan == 0 {
		return math.NaN()
	}
	return float64(r.Candidates[0].Makespan) / float64(r.Best.Makespan)
}
