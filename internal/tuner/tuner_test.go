package tuner

import (
	"context"
	"strings"
	"testing"

	"tempart/internal/flusim"
	"tempart/internal/mesh"
	"tempart/internal/partition"
)

func TestTuneFindsFinerGranularity(t *testing.T) {
	// On a multi-level mesh with SC_OC, finer granularity improves the
	// schedule (pipelining) — the tuner must not stop at 1 domain/proc.
	m := mesh.Cylinder(0.002)
	res, err := Tune(context.Background(), m, Config{
		Cluster:  flusim.Cluster{NumProcs: 8, WorkersPerProc: 4},
		Strategy: partition.SCOC,
		PartOpts: partition.Options{Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) < 3 {
		t.Fatalf("sweep too short: %d candidates", len(res.Candidates))
	}
	if res.Best.Domains <= 8 {
		t.Errorf("best granularity %d domains — expected finer than 1/proc", res.Best.Domains)
	}
	if s := res.SpeedupOverSinglePerProc(); s <= 1.0 {
		t.Errorf("speedup over coarsest %f, want > 1", s)
	}
	// Best really is the minimum.
	for _, c := range res.Candidates {
		if c.Makespan < res.Best.Makespan {
			t.Errorf("candidate %d beats reported best", c.Domains)
		}
	}
}

func TestTuneCommLatencyPrefersCoarser(t *testing.T) {
	// With expensive communication, the best granularity must not be finer
	// than the free-communication optimum.
	m := mesh.Cylinder(0.001)
	cl := flusim.Cluster{NumProcs: 4, WorkersPerProc: 4}
	free, err := Tune(context.Background(), m, Config{Cluster: cl, Strategy: partition.MCTL, PartOpts: partition.Options{Seed: 2}})
	if err != nil {
		t.Fatal(err)
	}
	costly, err := Tune(context.Background(), m, Config{
		Cluster: cl, Strategy: partition.MCTL, PartOpts: partition.Options{Seed: 2},
		CommLatency: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if costly.Best.Domains > free.Best.Domains {
		t.Errorf("comm-aware tuner picked finer granularity (%d) than free-comm (%d)",
			costly.Best.Domains, free.Best.Domains)
	}
	// Costly makespans dominate free ones at equal k.
	for i := range costly.Candidates {
		if i < len(free.Candidates) && costly.Candidates[i].Makespan < free.Candidates[i].Makespan {
			t.Errorf("k=%d: latency lowered makespan", costly.Candidates[i].Domains)
		}
	}
}

func TestTuneStopsAtMinCells(t *testing.T) {
	m := mesh.Cube(0.02) // ~3k cells
	res, err := Tune(context.Background(), m, Config{
		Cluster:           flusim.Cluster{NumProcs: 4, WorkersPerProc: 2},
		Strategy:          partition.SCOC,
		MinCellsPerDomain: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	last := res.Candidates[len(res.Candidates)-1]
	if m.NumCells()/last.Domains < 200 {
		t.Errorf("sweep violated MinCellsPerDomain: %d domains for %d cells", last.Domains, m.NumCells())
	}
}

func TestTuneErrors(t *testing.T) {
	m := mesh.Cube(0.01)
	if _, err := Tune(context.Background(), m, Config{}); err == nil {
		t.Error("accepted zero processes")
	}
	// Mesh too small for any candidate.
	if _, err := Tune(context.Background(), mesh.Strip(nil), Config{
		Cluster: flusim.Cluster{NumProcs: 4, WorkersPerProc: 1},
	}); err == nil {
		t.Error("accepted empty mesh")
	}
}

func TestResultString(t *testing.T) {
	m := mesh.Cube(0.05)
	res, err := Tune(context.Background(), m, Config{
		Cluster:  flusim.Cluster{NumProcs: 2, WorkersPerProc: 2},
		Strategy: partition.MCTL,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := res.String()
	if !strings.Contains(out, "*") {
		t.Errorf("best marker missing:\n%s", out)
	}
	if !strings.Contains(out, "makespan") {
		t.Errorf("header missing:\n%s", out)
	}
}
