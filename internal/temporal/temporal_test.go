package temporal

import (
	"testing"
	"testing/quick"
)

func TestNewSchemeRejectsHuge(t *testing.T) {
	if _, err := NewScheme(MaxSupportedLevel + 1); err == nil {
		t.Fatal("NewScheme accepted out-of-range level")
	}
	if _, err := NewScheme(MaxSupportedLevel); err != nil {
		t.Fatalf("NewScheme rejected supported level: %v", err)
	}
}

func TestSchemeBasics(t *testing.T) {
	s, _ := NewScheme(2)
	if s.NumLevels() != 3 {
		t.Errorf("NumLevels = %d, want 3", s.NumLevels())
	}
	if s.NumSubiterations() != 4 {
		t.Errorf("NumSubiterations = %d, want 4", s.NumSubiterations())
	}
}

// TestActivePatternPaperFig4 pins the activation pattern of the paper's
// Figure 4: MaxLevel 2 → 4 subiterations; τ=0 active at all, τ=1 at 0 and 2,
// τ=2 only at 0.
func TestActivePatternPaperFig4(t *testing.T) {
	s, _ := NewScheme(2)
	want := map[int][]bool{ // sub -> active per level 0,1,2
		0: {true, true, true},
		1: {true, false, false},
		2: {true, true, false},
		3: {true, false, false},
	}
	for sub, w := range want {
		for τ := Level(0); τ <= 2; τ++ {
			if got := s.Active(sub, τ); got != w[τ] {
				t.Errorf("Active(%d, %d) = %v, want %v", sub, τ, got, w[τ])
			}
		}
	}
}

func TestActiveBeyondMaxLevelIsFalse(t *testing.T) {
	s, _ := NewScheme(1)
	if s.Active(0, 5) {
		t.Error("level beyond MaxLevel reported active")
	}
}

func TestMaxActiveLevel(t *testing.T) {
	s, _ := NewScheme(3)
	want := []Level{3, 0, 1, 0, 2, 0, 1, 0}
	for sub, w := range want {
		if got := s.MaxActiveLevel(sub); got != w {
			t.Errorf("MaxActiveLevel(%d) = %d, want %d", sub, got, w)
		}
	}
}

func TestActiveLevelsDescending(t *testing.T) {
	s, _ := NewScheme(2)
	got := s.ActiveLevels(0)
	want := []Level{2, 1, 0}
	if len(got) != len(want) {
		t.Fatalf("ActiveLevels(0) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ActiveLevels(0) = %v, want %v", got, want)
		}
	}
	if g1 := s.ActiveLevels(1); len(g1) != 1 || g1[0] != 0 {
		t.Errorf("ActiveLevels(1) = %v, want [0]", g1)
	}
}

func TestCosts(t *testing.T) {
	s, _ := NewScheme(3)
	for τ, want := range []int32{8, 4, 2, 1} {
		if got := s.Cost(Level(τ)); got != want {
			t.Errorf("Cost(%d) = %d, want %d", τ, got, want)
		}
	}
	// Clamped above MaxLevel.
	if got := s.Cost(9); got != 1 {
		t.Errorf("Cost(9) = %d, want clamp to 1", got)
	}
}

// Property: each level τ is active exactly 2^(MaxLevel-τ) times per
// iteration, with period 2^τ — so the per-iteration cost model is exactly the
// activation count.
func TestActivationCountMatchesCostProperty(t *testing.T) {
	f := func(maxRaw uint8) bool {
		max := Level(maxRaw % 7)
		s, _ := NewScheme(max)
		for τ := Level(0); τ <= max; τ++ {
			count := 0
			for sub := 0; sub < s.NumSubiterations(); sub++ {
				if s.Active(sub, τ) {
					count++
				}
			}
			if count != int(s.Cost(τ)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: summing SubiterationWork over all subiterations equals
// IterationWork for any per-level census.
func TestWorkDecompositionProperty(t *testing.T) {
	f := func(maxRaw uint8, a, b, c, d uint16) bool {
		max := Level(maxRaw%4) + 0
		s, _ := NewScheme(max)
		cells := []int64{int64(a), int64(b), int64(c), int64(d)}[:int(max)+1]
		var sum int64
		for sub := 0; sub < s.NumSubiterations(); sub++ {
			sum += s.SubiterationWork(sub, cells)
		}
		return sum == s.IterationWork(cells)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLevelFromDt(t *testing.T) {
	cases := []struct {
		dt, base float64
		max      Level
		want     Level
	}{
		{1.0, 1.0, 3, 0},
		{1.9, 1.0, 3, 0},
		{2.0, 1.0, 3, 1},
		{4.0, 1.0, 3, 2},
		{1000, 1.0, 3, 3}, // clamped at max
		{0.5, 1.0, 3, 0},  // below base clamps to 0
	}
	for _, c := range cases {
		if got := LevelFromDt(c.dt, c.base, c.max); got != c.want {
			t.Errorf("LevelFromDt(%g,%g,%d) = %d, want %d", c.dt, c.base, c.max, got, c.want)
		}
	}
}

// Property: LevelFromDt is monotone non-decreasing in dt.
func TestLevelFromDtMonotoneProperty(t *testing.T) {
	f := func(x, y uint16) bool {
		dt1, dt2 := float64(x)/16+0.01, float64(y)/16+0.01
		if dt1 > dt2 {
			dt1, dt2 = dt2, dt1
		}
		return LevelFromDt(dt1, 1.0, 8) <= LevelFromDt(dt2, 1.0, 8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
