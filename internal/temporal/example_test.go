package temporal_test

import (
	"fmt"

	"tempart/internal/temporal"
)

// ExampleScheme shows the subiteration structure of a 3-level mesh — the
// paper's Figure 4: level τ is recomputed every 2^τ subiterations.
func ExampleScheme() {
	s, _ := temporal.NewScheme(2)
	fmt.Println("subiterations:", s.NumSubiterations())
	for sub := 0; sub < s.NumSubiterations(); sub++ {
		fmt.Printf("sub %d active levels: %v\n", sub, s.ActiveLevels(sub))
	}
	fmt.Println("cost of level 0:", s.Cost(0))
	// Output:
	// subiterations: 4
	// sub 0 active levels: [2 1 0]
	// sub 1 active levels: [0]
	// sub 2 active levels: [1 0]
	// sub 3 active levels: [0]
	// cost of level 0: 4
}
