// Package temporal implements the adaptive time-stepping scheme of the
// FLUSEPA solver: temporal levels, operating costs, and the subiteration
// schedule that determines which levels are active when.
//
// Every cell carries a temporal level τ ∈ [0, MaxLevel]. A cell of level τ
// advances with time step base·2^τ, so an iteration — which brings the whole
// mesh to the same physical time — is divided into 2^MaxLevel subiterations,
// and a level-τ cell is recomputed every 2^τ subiterations. Level τ is
// therefore *active* at subiteration s iff s mod 2^τ == 0, and the per-
// iteration operating cost of a level-τ cell is 2^(MaxLevel−τ).
package temporal

import "fmt"

// Level is a temporal level. Level 0 is the finest (smallest time step, most
// expensive); higher levels halve the update frequency.
type Level uint8

// MaxSupportedLevel bounds the scheme; 2^MaxSupportedLevel subiterations must
// stay comfortably within int range and realistic meshes use ≤ 8 levels (the
// paper's meshes use 3 and 4).
const MaxSupportedLevel = 16

// Scheme describes the temporal integration of a mesh whose highest temporal
// level is MaxLevel (i.e. levels 0..MaxLevel all exist or are permitted).
type Scheme struct {
	MaxLevel Level
}

// NewScheme returns the scheme for the given maximum temporal level.
func NewScheme(max Level) (Scheme, error) {
	if max > MaxSupportedLevel {
		return Scheme{}, fmt.Errorf("temporal: max level %d exceeds supported %d", max, MaxSupportedLevel)
	}
	return Scheme{MaxLevel: max}, nil
}

// NumLevels returns the number of distinct temporal levels (MaxLevel+1).
func (s Scheme) NumLevels() int { return int(s.MaxLevel) + 1 }

// NumSubiterations returns how many subiterations one iteration comprises:
// 2^MaxLevel.
func (s Scheme) NumSubiterations() int { return 1 << s.MaxLevel }

// Active reports whether level τ is computed during subiteration sub
// (0-based within the iteration).
func (s Scheme) Active(sub int, τ Level) bool {
	if τ > s.MaxLevel {
		return false
	}
	return sub&((1<<τ)-1) == 0
}

// MaxActiveLevel returns the highest temporal level active at subiteration
// sub. Subiteration 0 activates every level; subiteration s>0 activates
// levels 0..trailingZeros(s).
func (s Scheme) MaxActiveLevel(sub int) Level {
	if sub == 0 {
		return s.MaxLevel
	}
	tz := Level(trailingZeros(sub))
	if tz > s.MaxLevel {
		return s.MaxLevel
	}
	return tz
}

// ActiveLevels returns the levels computed at subiteration sub, in the
// descending order in which Algorithm 1 traverses them (phases).
func (s Scheme) ActiveLevels(sub int) []Level {
	max := s.MaxActiveLevel(sub)
	out := make([]Level, 0, int(max)+1)
	for τ := int(max); τ >= 0; τ-- {
		out = append(out, Level(τ))
	}
	return out
}

// Cost returns the per-iteration operating cost of a level-τ cell:
// 2^(MaxLevel−τ). This is the weight used by the single-constraint
// operating-cost (SC_OC) partitioning strategy.
func (s Scheme) Cost(τ Level) int32 {
	if τ > s.MaxLevel {
		τ = s.MaxLevel
	}
	return 1 << (s.MaxLevel - τ)
}

// Updates returns how many times a level-τ cell is recomputed per iteration;
// identical to Cost for the unit-work-per-update model.
func (s Scheme) Updates(τ Level) int { return int(s.Cost(τ)) }

// SubiterationWork returns, given per-level active cell counts, the total
// work units injected by subiteration sub: the number of active cells (each
// update costs one unit).
func (s Scheme) SubiterationWork(sub int, cellsPerLevel []int64) int64 {
	var w int64
	for τ, n := range cellsPerLevel {
		if s.Active(sub, Level(τ)) {
			w += n
		}
	}
	return w
}

// IterationWork returns the total work of a full iteration given per-level
// cell counts: Σ_τ cells[τ]·2^(MaxLevel−τ).
func (s Scheme) IterationWork(cellsPerLevel []int64) int64 {
	var w int64
	for τ, n := range cellsPerLevel {
		w += n * int64(s.Cost(Level(τ)))
	}
	return w
}

// LevelFromDt assigns the temporal level for a cell whose maximum stable time
// step is dt, given the base (finest) step dtBase: the largest τ ≤ maxLevel
// with dtBase·2^τ ≤ dt. Cells with dt < dtBase get level 0 (they constrain
// the scheme; callers normally choose dtBase = min dt).
func LevelFromDt(dt, dtBase float64, maxLevel Level) Level {
	if dt <= dtBase {
		return 0
	}
	var τ Level
	step := dtBase
	for τ < maxLevel && step*2 <= dt {
		step *= 2
		τ++
	}
	return τ
}

func trailingZeros(x int) int {
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}
