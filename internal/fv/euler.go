package fv

import (
	"fmt"
	"math"

	"tempart/internal/mesh"
	"tempart/internal/temporal"
)

// EulerState solves the 3D compressible Euler equations — the inviscid core
// of FLUSEPA's Navier-Stokes model — with the same flux-accumulator local
// time stepping as the scalar State: five conserved variables per cell
// (density, three momentum components, total energy), a Rusanov (local
// Lax-Friedrichs) numerical flux on faces, and reflective (slip-wall)
// boundaries so that mass and energy are conserved to round-off.
//
// It implements the same kernel pair (ComputeFaces / UpdateCells over object
// id lists) as State, so the task runtime can execute either model through
// an identical task graph.
type EulerState struct {
	// Conserved variables, SoA layout.
	Rho, Mx, My, Mz, E []float64
	// Per-face side accumulators: aL[f]/aR[f] hold the flux·dt integrals
	// destined for the C0/C1 cell, components ordered ρ, mx, my, mz, E.
	// Single-writer per slot under the task graph (see package fv docs).
	aL, aR [][5]float64

	m      *mesh.Mesh
	p      EulerParams
	scheme temporal.Scheme

	// Face geometry: unit normal (C0→C1), area, time step.
	nx, ny, nz []float64
	area       []float64
	fdt        []float64
}

// EulerParams configures the gas model.
type EulerParams struct {
	// Gamma is the ratio of specific heats; 0 defaults to 1.4 (air).
	Gamma float64
	// DtBase is the finest temporal level's time step; 0 defaults to 1e-3.
	DtBase float64
}

func (p EulerParams) withDefaults() EulerParams {
	if p.Gamma <= 1 {
		p.Gamma = 1.4
	}
	if p.DtBase <= 0 {
		p.DtBase = 1e-3
	}
	return p
}

// NewEulerState allocates the Euler solver state over a mesh.
func NewEulerState(m *mesh.Mesh, p EulerParams) *EulerState {
	p = p.withDefaults()
	n := m.NumCells()
	s := &EulerState{
		Rho: make([]float64, n), Mx: make([]float64, n), My: make([]float64, n),
		Mz: make([]float64, n), E: make([]float64, n),
		aL: make([][5]float64, m.NumFaces()), aR: make([][5]float64, m.NumFaces()),
		m: m, p: p, scheme: m.Scheme(),
	}
	s.precomputeFaces()
	if n > 0 {
		m.CellFaces(0) // pre-build the cell→face index before parallel use
	}
	return s
}

// Mesh returns the state's mesh.
func (s *EulerState) Mesh() *mesh.Mesh { return s.m }

// RefreshLevels re-derives the level-dependent caches (temporal scheme, face
// time steps) after the mesh's temporal levels changed in place. Call it
// only between iterations, when the face accumulators are drained.
func (s *EulerState) RefreshLevels() {
	s.scheme = s.m.Scheme()
	s.precomputeFaces()
}

func (s *EulerState) precomputeFaces() {
	m := s.m
	nf := m.NumFaces()
	s.nx = make([]float64, nf)
	s.ny = make([]float64, nf)
	s.nz = make([]float64, nf)
	s.area = make([]float64, nf)
	s.fdt = make([]float64, nf)
	for i, f := range m.Faces {
		lvl := m.Level[f.C0]
		if !f.IsBoundary() && m.Level[f.C1] < lvl {
			lvl = m.Level[f.C1]
		}
		s.fdt[i] = s.p.DtBase * float64(int64(1)<<lvl)
		// Unit areas keep the discrete closure Σ n̂·A = 0 exact on the
		// generators' lattice geometry, so a uniform gas at rest is an
		// exact steady state (production codes guarantee closure through
		// exact face geometry; our synthetic meshes guarantee it this way).
		s.area[i] = 1
		if f.IsBoundary() {
			bx, by, bz := m.BoundaryNormal(int32(i))
			s.nx[i], s.ny[i], s.nz[i] = float64(bx), float64(by), float64(bz)
			continue
		}
		dx := float64(m.CX[f.C1] - m.CX[f.C0])
		dy := float64(m.CY[f.C1] - m.CY[f.C0])
		dz := float64(m.CZ[f.C1] - m.CZ[f.C0])
		d := math.Sqrt(dx*dx + dy*dy + dz*dz)
		if d == 0 {
			d = 1e-12
		}
		s.nx[i], s.ny[i], s.nz[i] = dx/d, dy/d, dz/d
	}
}

// InitUniform fills the domain with gas at rest at the given density and
// pressure.
func (s *EulerState) InitUniform(rho, pressure float64) {
	e := pressure / (s.p.Gamma - 1)
	for c := range s.Rho {
		s.Rho[c] = rho
		s.Mx[c], s.My[c], s.Mz[c] = 0, 0, 0
		s.E[c] = e
	}
}

// InitBlast superimposes a high-pressure Gaussian region centred at
// (cx,cy,cz) on a quiescent background — the blast-wave configuration of the
// paper's motivating applications (launcher take-off, stage separation).
func (s *EulerState) InitBlast(cx, cy, cz, width, overpressure float64) {
	s.InitUniform(1.0, 1.0)
	inv := 1 / (2 * width * width)
	m := s.m
	for c := range s.Rho {
		dx := float64(m.CX[c]) - cx
		dy := float64(m.CY[c]) - cy
		dz := float64(m.CZ[c]) - cz
		p := 1.0 + overpressure*math.Exp(-(dx*dx+dy*dy+dz*dz)*inv)
		s.E[c] = p / (s.p.Gamma - 1)
	}
}

// InitSod sets the classical Sod shock-tube state split at x = xSplit:
// (ρ,p) = (1, 1) on the left, (0.125, 0.1) on the right, gas at rest.
func (s *EulerState) InitSod(xSplit float64) {
	g1 := s.p.Gamma - 1
	m := s.m
	for c := range s.Rho {
		if float64(m.CX[c]) < xSplit {
			s.Rho[c], s.E[c] = 1.0, 1.0/g1
		} else {
			s.Rho[c], s.E[c] = 0.125, 0.1/g1
		}
		s.Mx[c], s.My[c], s.Mz[c] = 0, 0, 0
	}
}

// pressure returns the thermodynamic pressure of cell c.
func (s *EulerState) pressure(c int32) float64 {
	ke := (s.Mx[c]*s.Mx[c] + s.My[c]*s.My[c] + s.Mz[c]*s.Mz[c]) / (2 * s.Rho[c])
	return (s.p.Gamma - 1) * (s.E[c] - ke)
}

// ComputeFaces evaluates the Rusanov flux on the given faces and integrates
// it over each face's time step into both adjacent cells' accumulators.
// Boundary faces are slip walls: only the pressure force (along the stored
// outward normal) acts, so mass and energy are conserved exactly and a
// uniform gas at rest stays exactly steady.
func (s *EulerState) ComputeFaces(faces []int32) {
	g := s.p.Gamma
	m := s.m
	for _, fi := range faces {
		f := m.Faces[fi]
		if f.IsBoundary() {
			// Slip wall: only the pressure force acts, along the outward
			// normal; no mass or energy crosses.
			p := s.pressure(f.C0)
			k := s.area[fi] * s.fdt[fi]
			a := &s.aL[fi]
			a[1] -= k * p * s.nx[fi]
			a[2] -= k * p * s.ny[fi]
			a[3] -= k * p * s.nz[fi]
			continue
		}
		L, R := f.C0, f.C1
		nx, ny, nz := s.nx[fi], s.ny[fi], s.nz[fi]

		rL, rR := s.Rho[L], s.Rho[R]
		uL := (s.Mx[L]*nx + s.My[L]*ny + s.Mz[L]*nz) / rL
		uR := (s.Mx[R]*nx + s.My[R]*ny + s.Mz[R]*nz) / rR
		pL, pR := s.pressure(L), s.pressure(R)
		if pL < 1e-12 {
			pL = 1e-12
		}
		if pR < 1e-12 {
			pR = 1e-12
		}
		cL := math.Sqrt(g * pL / rL)
		cR := math.Sqrt(g * pR / rR)
		smax := math.Max(math.Abs(uL)+cL, math.Abs(uR)+cR)

		// Physical fluxes F(U)·n on each side.
		fRhoL := rL * uL
		fRhoR := rR * uR
		fMxL := s.Mx[L]*uL + pL*nx
		fMxR := s.Mx[R]*uR + pR*nx
		fMyL := s.My[L]*uL + pL*ny
		fMyR := s.My[R]*uR + pR*ny
		fMzL := s.Mz[L]*uL + pL*nz
		fMzR := s.Mz[R]*uR + pR*nz
		fEL := (s.E[L] + pL) * uL
		fER := (s.E[R] + pR) * uR

		// Rusanov: ½(F_L+F_R) − ½·smax·(U_R−U_L), scaled by area·dt.
		k := 0.5 * s.area[fi] * s.fdt[fi]
		dRho := k * (fRhoL + fRhoR - smax*(rR-rL))
		dMx := k * (fMxL + fMxR - smax*(s.Mx[R]-s.Mx[L]))
		dMy := k * (fMyL + fMyR - smax*(s.My[R]-s.My[L]))
		dMz := k * (fMzL + fMzR - smax*(s.Mz[R]-s.Mz[L]))
		dE := k * (fEL + fER - smax*(s.E[R]-s.E[L]))

		aL, aR := &s.aL[fi], &s.aR[fi]
		aL[0] -= dRho
		aR[0] += dRho
		aL[1] -= dMx
		aR[1] += dMx
		aL[2] -= dMy
		aR[2] += dMy
		aL[3] -= dMz
		aR[3] += dMz
		aL[4] -= dE
		aR[4] += dE
	}
}

// UpdateCells drains the side accumulators of each cell's faces into the
// conserved variables.
func (s *EulerState) UpdateCells(cells []int32) {
	m := s.m
	for _, c := range cells {
		var acc [5]float64
		for _, fi := range m.CellFaces(c) {
			var a *[5]float64
			if m.Faces[fi].C0 == c {
				a = &s.aL[fi]
			} else {
				a = &s.aR[fi]
			}
			for k := 0; k < 5; k++ {
				acc[k] += a[k]
				a[k] = 0
			}
		}
		inv := 1 / float64(m.Volume[c])
		s.Rho[c] += acc[0] * inv
		s.Mx[c] += acc[1] * inv
		s.My[c] += acc[2] * inv
		s.Mz[c] += acc[3] * inv
		s.E[c] += acc[4] * inv
	}
}

// Mass returns the conserved total mass Σ ρ·vol + Σ side accumulators.
func (s *EulerState) Mass() float64 {
	var total float64
	for c := range s.Rho {
		total += s.Rho[c] * float64(s.m.Volume[c])
	}
	for f := range s.aL {
		total += s.aL[f][0] + s.aR[f][0]
	}
	return total
}

// TotalEnergy returns the conserved total energy Σ E·vol + Σ side accs.
func (s *EulerState) TotalEnergy() float64 {
	var total float64
	for c := range s.E {
		total += s.E[c] * float64(s.m.Volume[c])
	}
	for f := range s.aL {
		total += s.aL[f][4] + s.aR[f][4]
	}
	return total
}

// CheckFinite verifies that density, energy and pressure are finite and
// positive everywhere.
func (s *EulerState) CheckFinite() error {
	for c := range s.Rho {
		if !(s.Rho[c] > 0) || math.IsInf(s.Rho[c], 0) {
			return fmt.Errorf("fv: non-positive density %v at cell %d", s.Rho[c], c)
		}
		if !(s.E[c] > 0) || math.IsInf(s.E[c], 0) {
			return fmt.Errorf("fv: non-positive energy %v at cell %d", s.E[c], c)
		}
		if p := s.pressure(int32(c)); !(p > 0) || math.IsNaN(p) {
			return fmt.Errorf("fv: non-positive pressure %v at cell %d", p, c)
		}
	}
	return nil
}

// RunIteration advances one full adaptive iteration serially, in the same
// phase order as the task generation algorithm — the golden reference for
// task-parallel Euler execution.
func (s *EulerState) RunIteration() {
	m := s.m
	facesBy := make([][]int32, s.scheme.NumLevels())
	cellsBy := make([][]int32, s.scheme.NumLevels())
	for i, f := range m.Faces {
		l := m.Level[f.C0]
		if !f.IsBoundary() && m.Level[f.C1] < l {
			l = m.Level[f.C1]
		}
		facesBy[l] = append(facesBy[l], int32(i))
	}
	for c := 0; c < m.NumCells(); c++ {
		cellsBy[m.Level[c]] = append(cellsBy[m.Level[c]], int32(c))
	}
	for sub := 0; sub < s.scheme.NumSubiterations(); sub++ {
		for _, tau := range s.scheme.ActiveLevels(sub) {
			s.ComputeFaces(facesBy[tau])
			s.UpdateCells(cellsBy[tau])
		}
	}
}
