package fv

import (
	"math"
	"testing"

	"tempart/internal/mesh"
	"tempart/internal/temporal"
)

func TestEulerUniformIsSteadySingleLevel(t *testing.T) {
	// On a single-level mesh every face carries the same dt, so the closed
	// pressure balance cancels within every subiteration: a uniform gas at
	// rest stays *exactly* uniform.
	m := mesh.Strip(make([]temporal.Level, 40))
	s := NewEulerState(m, EulerParams{})
	s.InitUniform(1.0, 1.0)
	for i := 0; i < 5; i++ {
		s.RunIteration()
	}
	for c := range s.Rho {
		if s.Rho[c] != 1.0 || s.Mx[c] != 0 {
			t.Fatalf("uniform single-level state drifted at cell %d: rho=%v mx=%v", c, s.Rho[c], s.Mx[c])
		}
	}
}

func TestEulerUniformNearSteadyMultiLevel(t *testing.T) {
	// With multiple temporal levels, a level-boundary cell's wall/face
	// pressure impulses only cancel over a full iteration, leaving a
	// transient O(dt²) ripple — it must stay tiny and mass/energy exact.
	m := mesh.Cube(0.02)
	s := NewEulerState(m, EulerParams{})
	s.InitUniform(1.0, 1.0)
	m0, e0 := s.Mass(), s.TotalEnergy()
	ripple := func() float64 {
		w := 0.0
		for c := range s.Mx {
			if a := math.Abs(s.Mx[c]); a > w {
				w = a
			}
		}
		return w
	}
	for i := 0; i < 4; i++ {
		s.RunIteration()
	}
	early := ripple()
	for i := 0; i < 8; i++ {
		s.RunIteration()
	}
	late := ripple()
	if err := s.CheckFinite(); err != nil {
		t.Fatal(err)
	}
	if early > 1e-3 { // Mach ~1e-3 startup bound
		t.Errorf("startup ripple too large: %v", early)
	}
	if late > early {
		t.Errorf("ripple grows: %v -> %v (instability)", early, late)
	}
	for c := range s.Rho {
		if math.Abs(s.Rho[c]-1) > 1e-3 {
			t.Fatalf("uniform state drifted: rho[%d] = %v", c, s.Rho[c])
		}
	}
	if math.Abs(s.Mass()-m0) > 1e-10*m0 || math.Abs(s.TotalEnergy()-e0) > 1e-10*e0 {
		t.Error("conserved totals drifted on uniform state")
	}
}

func TestEulerBlastConservesMassAndEnergy(t *testing.T) {
	m := mesh.Cylinder(0.0005)
	s := NewEulerState(m, EulerParams{DtBase: 2e-4})
	s.InitBlast(1.0, 0.5, 0.5, 0.2, 3.0)
	m0, e0 := s.Mass(), s.TotalEnergy()
	for i := 0; i < 3; i++ {
		s.RunIteration()
	}
	if err := s.CheckFinite(); err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(s.Mass()-m0) / m0; rel > 1e-10 {
		t.Errorf("mass drift %.3e", rel)
	}
	if rel := math.Abs(s.TotalEnergy()-e0) / e0; rel > 1e-10 {
		t.Errorf("energy drift %.3e", rel)
	}
}

func TestEulerBlastExpands(t *testing.T) {
	// The overpressure region must launch an outward wave: density near the
	// centre drops, and cells at mid radius gain outward momentum.
	m := mesh.Cube(0.05)
	s := NewEulerState(m, EulerParams{DtBase: 2e-4})
	cx, cy, cz := 0.5, 0.5, 0.5
	s.InitBlast(cx, cy, cz, 0.1, 5.0)

	// Locate the centre-most cell.
	centre, bestD := 0, math.Inf(1)
	for c := 0; c < m.NumCells(); c++ {
		dx := float64(m.CX[c]) - cx
		dy := float64(m.CY[c]) - cy
		dz := float64(m.CZ[c]) - cz
		d := math.Sqrt(dx*dx + dy*dy + dz*dz)
		if d < bestD {
			centre, bestD = c, d
		}
	}
	e0 := s.E[centre]
	for i := 0; i < 12; i++ {
		s.RunIteration()
	}
	if err := s.CheckFinite(); err != nil {
		t.Fatal(err)
	}
	if s.E[centre] >= e0 {
		t.Errorf("centre energy did not decrease: %v -> %v", e0, s.E[centre])
	}
	// Net radial momentum flux: sample cells at r ≈ 0.25 and check their
	// momentum points outward on average.
	var radial float64
	n := 0
	for c := 0; c < m.NumCells(); c++ {
		dx := float64(m.CX[c]) - cx
		dy := float64(m.CY[c]) - cy
		dz := float64(m.CZ[c]) - cz
		r := math.Sqrt(dx*dx + dy*dy + dz*dz)
		if r < 0.15 || r > 0.35 {
			continue
		}
		radial += (s.Mx[c]*dx + s.My[c]*dy + s.Mz[c]*dz) / r
		n++
	}
	if n == 0 || radial <= 0 {
		t.Errorf("no outward wave: net radial momentum %v over %d cells", radial, n)
	}
}

func TestEulerSodShockTube(t *testing.T) {
	// 1D Sod problem on a 200-cell strip: after a short time the density
	// must be monotone decreasing from left to right plateau values, a
	// right-moving shock exists (density in the right half above the initial
	// 0.125), and the exact-solution bounds hold: ρ ∈ [0.125, 1].
	levels := make([]temporal.Level, 200)
	m := mesh.Strip(levels)
	s := NewEulerState(m, EulerParams{DtBase: 0.1}) // dx=1 → CFL ≈ 0.12
	s.InitSod(100)
	m0 := s.Mass()
	for i := 0; i < 300; i++ {
		s.RunIteration()
	}
	if err := s.CheckFinite(); err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(s.Mass()-m0) / m0; rel > 1e-10 {
		t.Errorf("mass drift %.3e", rel)
	}
	for c := range s.Rho {
		if s.Rho[c] < 0.124 || s.Rho[c] > 1.001 {
			t.Fatalf("density %v at cell %d outside Sod bounds", s.Rho[c], c)
		}
	}
	// Shock moved right: some cell beyond x=120 has compressed gas.
	compressed := false
	for c := 120; c < 180; c++ {
		if s.Rho[c] > 0.2 {
			compressed = true
			break
		}
	}
	if !compressed {
		t.Error("no right-moving shock detected")
	}
	// The left end is still undisturbed (wave hasn't reached it... with 300
	// iterations and smax≈1.2 the expansion foot stays right of cell 20).
	if s.Rho[2] < 0.99 {
		t.Errorf("left state disturbed too early: rho[2] = %v", s.Rho[2])
	}
}

func TestEulerKernelPartitionInvariance(t *testing.T) {
	// As for the scalar model: chunked kernels equal monolithic kernels.
	levels := []temporal.Level{0, 1, 0, 2, 1, 0, 0, 1}
	mA, mB := mesh.Strip(levels), mesh.Strip(levels)
	a := NewEulerState(mA, EulerParams{})
	b := NewEulerState(mB, EulerParams{})
	a.InitBlast(4, 0.5, 0.5, 2, 2)
	b.InitBlast(4, 0.5, 0.5, 2, 2)

	a.RunIteration()

	scheme := mB.Scheme()
	facesBy := make([][]int32, scheme.NumLevels())
	cellsBy := make([][]int32, scheme.NumLevels())
	for i, f := range mB.Faces {
		l := mB.Level[f.C0]
		if !f.IsBoundary() && mB.Level[f.C1] < l {
			l = mB.Level[f.C1]
		}
		facesBy[l] = append(facesBy[l], int32(i))
	}
	for c := 0; c < mB.NumCells(); c++ {
		cellsBy[mB.Level[c]] = append(cellsBy[mB.Level[c]], int32(c))
	}
	for sub := 0; sub < scheme.NumSubiterations(); sub++ {
		for _, tau := range scheme.ActiveLevels(sub) {
			for _, f := range facesBy[tau] {
				b.ComputeFaces([]int32{f})
			}
			for _, c := range cellsBy[tau] {
				b.UpdateCells([]int32{c})
			}
		}
	}
	for c := range a.Rho {
		if math.Abs(a.Rho[c]-b.Rho[c]) > 1e-13 || math.Abs(a.E[c]-b.E[c]) > 1e-13 {
			t.Fatalf("cell %d diverged: rho %v/%v E %v/%v", c, a.Rho[c], b.Rho[c], a.E[c], b.E[c])
		}
	}
}

func TestEulerDefaults(t *testing.T) {
	p := EulerParams{}.withDefaults()
	if p.Gamma != 1.4 || p.DtBase != 1e-3 {
		t.Errorf("defaults = %+v", p)
	}
}
