// Package fv implements the explicit finite-volume kernels that play the
// role of FLUSEPA's Navier-Stokes solver in this reproduction: a 3D
// advection–diffusion conservation law integrated with the adaptive
// time-stepping scheme of internal/temporal.
//
// The numerical model is deliberately simpler than the production code's
// (first-order upwind advection plus central diffusion, forward-Euler stages
// instead of second-order Heun — see DESIGN.md §2): what the paper's
// evaluation depends on is that per-task work is proportional to the active
// face/cell counts and that the update pattern follows the temporal levels,
// both of which hold exactly here. In exchange we get a checkable substrate:
// with zero-flux boundaries the scheme conserves total mass to round-off.
//
// The local time stepping follows the classical flux-accumulation scheme:
// every face activation integrates its flux over the face's own time step
// (dtBase·2^τface) into two per-face accumulators, one per adjacent side;
// every cell activation drains its faces' side accumulators into the
// conserved value. Because each face contribution enters the two sides
// antisymmetrically, the quantity Σ U·vol + Σ sideAcc is invariant at every
// point of the iteration.
//
// Storing contributions per (face, side) rather than per cell makes every
// memory slot single-writer under the task graph's dependencies: a face is
// written only by its owning face task, and each side is drained only by
// that side's cell task, with write→drain→write alternation ordered by the
// existing DAG edges. Task-parallel execution is therefore race-free and
// bit-exact deterministic — it reproduces RunIteration's floating-point
// result exactly. (This mirrors receiver-side halo accumulation in the MPI
// production code, where border contributions are merged by the owning
// process.)
package fv

import (
	"fmt"
	"math"

	"tempart/internal/mesh"
	"tempart/internal/temporal"
)

// Params configures the physics.
type Params struct {
	// Velocity is the uniform advection field.
	Velocity [3]float64
	// Diffusion is the scalar diffusivity.
	Diffusion float64
	// DtBase is the time step of the finest temporal level; level τ cells
	// advance by DtBase·2^τ per activation.
	DtBase float64
}

// DefaultParams returns stable parameters for the synthetic meshes.
func DefaultParams() Params {
	return Params{Velocity: [3]float64{1, 0.3, 0.2}, Diffusion: 0.05, DtBase: 0.01}
}

// State is the solver state over a mesh.
type State struct {
	// U is the conserved cell value (e.g. density).
	U []float64
	// AccL and AccR accumulate flux·dt contributions per face for the C0
	// (left) and C1 (right) side respectively, between cell activations.
	AccL, AccR []float64

	m      *mesh.Mesh
	p      Params
	scheme temporal.Scheme

	// faceGeom caches per-face area·(v·n) advection factors and diffusion
	// transmissibilities.
	adv  []float64 // signed: positive moves mass C0 → C1
	diff []float64
	fdt  []float64 // face time step DtBase·2^τface
}

// NewState allocates the solver state for a mesh.
func NewState(m *mesh.Mesh, p Params) *State {
	if p.DtBase <= 0 {
		p.DtBase = 0.01
	}
	s := &State{
		U:      make([]float64, m.NumCells()),
		AccL:   make([]float64, m.NumFaces()),
		AccR:   make([]float64, m.NumFaces()),
		m:      m,
		p:      p,
		scheme: m.Scheme(),
	}
	s.precomputeFaceGeometry()
	if m.NumCells() > 0 {
		m.CellFaces(0) // pre-build the cell→face index before parallel use
	}
	return s
}

// Mesh returns the state's mesh.
func (s *State) Mesh() *mesh.Mesh { return s.m }

// Params returns the physics parameters.
func (s *State) Params() Params { return s.p }

// RefreshLevels re-derives the level-dependent caches (temporal scheme and
// per-face time steps) after the mesh's temporal levels changed in place —
// e.g. by mesh.ReassignLevels during a solver-loop repartition. Call it only
// between iterations, when all face accumulators have been drained.
func (s *State) RefreshLevels() {
	s.scheme = s.m.Scheme()
	s.precomputeFaceGeometry()
}

func (s *State) precomputeFaceGeometry() {
	m := s.m
	nf := m.NumFaces()
	s.adv = make([]float64, nf)
	s.diff = make([]float64, nf)
	s.fdt = make([]float64, nf)
	for i, f := range m.Faces {
		lvl := m.Level[f.C0]
		if f.IsBoundary() {
			// Zero-flux boundary: factors stay 0.
			s.fdt[i] = s.p.DtBase * float64(int64(1)<<lvl)
			continue
		}
		if m.Level[f.C1] < lvl {
			lvl = m.Level[f.C1]
		}
		s.fdt[i] = s.p.DtBase * float64(int64(1)<<lvl)

		dx := float64(m.CX[f.C1] - m.CX[f.C0])
		dy := float64(m.CY[f.C1] - m.CY[f.C0])
		dz := float64(m.CZ[f.C1] - m.CZ[f.C0])
		dist := math.Sqrt(dx*dx + dy*dy + dz*dz)
		if dist == 0 {
			dist = 1e-12
		}
		// Face area ≈ (geometric mean volume)^(2/3).
		vol := math.Sqrt(float64(m.Volume[f.C0]) * float64(m.Volume[f.C1]))
		area := math.Pow(vol, 2.0/3.0)
		vn := (s.p.Velocity[0]*dx + s.p.Velocity[1]*dy + s.p.Velocity[2]*dz) / dist
		s.adv[i] = vn * area
		s.diff[i] = s.p.Diffusion * area / dist
	}
}

// InitGaussian sets U to a Gaussian blob centred at (cx,cy,cz).
func (s *State) InitGaussian(cx, cy, cz, width, amplitude float64) {
	m := s.m
	inv := 1 / (2 * width * width)
	for c := 0; c < m.NumCells(); c++ {
		dx := float64(m.CX[c]) - cx
		dy := float64(m.CY[c]) - cy
		dz := float64(m.CZ[c]) - cz
		s.U[c] = amplitude * math.Exp(-(dx*dx+dy*dy+dz*dz)*inv)
	}
}

// InitUniform sets U to a constant.
func (s *State) InitUniform(v float64) {
	for c := range s.U {
		s.U[c] = v
	}
}

// ComputeFaces runs the face kernel over the given face ids: first-order
// upwind advection plus central diffusion, integrated over the face's time
// step into the face's two side accumulators. This is the body of a
// FaceKind task.
func (s *State) ComputeFaces(faces []int32) {
	m := s.m
	for _, fi := range faces {
		f := m.Faces[fi]
		if f.IsBoundary() {
			continue // zero-flux wall
		}
		a := s.adv[fi]
		var flux float64
		if a >= 0 {
			flux = a * s.U[f.C0]
		} else {
			flux = a * s.U[f.C1]
		}
		flux += s.diff[fi] * (s.U[f.C0] - s.U[f.C1])
		x := flux * s.fdt[fi]
		s.AccL[fi] -= x
		s.AccR[fi] += x
	}
}

// UpdateCells runs the cell kernel over the given cell ids: drain the side
// accumulators of each cell's faces into the conserved value. This is the
// body of a CellKind task.
func (s *State) UpdateCells(cells []int32) {
	m := s.m
	for _, c := range cells {
		var acc float64
		for _, fi := range m.CellFaces(c) {
			if m.Faces[fi].C0 == c {
				acc += s.AccL[fi]
				s.AccL[fi] = 0
			} else {
				acc += s.AccR[fi]
				s.AccR[fi] = 0
			}
		}
		s.U[c] += acc / float64(m.Volume[c])
	}
}

// Mass returns the conserved total Σ U·vol + Σ (AccL+AccR). With zero-flux
// boundaries it is invariant under any interleaving of ComputeFaces and
// UpdateCells calls that the task graph permits.
func (s *State) Mass() float64 {
	var total float64
	for c := range s.U {
		total += s.U[c] * float64(s.m.Volume[c])
	}
	for f := range s.AccL {
		total += s.AccL[f] + s.AccR[f]
	}
	return total
}

// MaxAbs returns max |U|, a cheap stability probe.
func (s *State) MaxAbs() float64 {
	var v float64
	for _, u := range s.U {
		if a := math.Abs(u); a > v {
			v = a
		}
	}
	return v
}

// RunIteration advances one full iteration serially, following exactly the
// subiteration/phase order of the task generation algorithm (descending τ,
// faces before cells). It is the golden reference the task-parallel
// execution must match.
func (s *State) RunIteration() {
	m := s.m
	nsub := s.scheme.NumSubiterations()
	// Group object ids by level once.
	facesByLevel := make([][]int32, s.scheme.NumLevels())
	cellsByLevel := make([][]int32, s.scheme.NumLevels())
	for i := range m.Faces {
		l := m.Level[m.Faces[i].C0]
		if !m.Faces[i].IsBoundary() && m.Level[m.Faces[i].C1] < l {
			l = m.Level[m.Faces[i].C1]
		}
		facesByLevel[l] = append(facesByLevel[l], int32(i))
	}
	for c := 0; c < m.NumCells(); c++ {
		cellsByLevel[m.Level[c]] = append(cellsByLevel[m.Level[c]], int32(c))
	}
	for sub := 0; sub < nsub; sub++ {
		for _, tau := range s.scheme.ActiveLevels(sub) {
			s.ComputeFaces(facesByLevel[tau])
			s.UpdateCells(cellsByLevel[tau])
		}
	}
}

// CheckFinite returns an error naming the first non-finite cell value.
func (s *State) CheckFinite() error {
	for c, u := range s.U {
		if math.IsNaN(u) || math.IsInf(u, 0) {
			return fmt.Errorf("fv: non-finite U at cell %d: %v", c, u)
		}
	}
	return nil
}
