package fv

import (
	"math"
	"testing"
	"testing/quick"

	"tempart/internal/mesh"
	"tempart/internal/temporal"
)

func TestMassConservationSingleLevel(t *testing.T) {
	m := mesh.Strip([]temporal.Level{0, 0, 0, 0, 0})
	s := NewState(m, DefaultParams())
	s.InitGaussian(2.5, 0.5, 0.5, 1.0, 1.0)
	m0 := s.Mass()
	for i := 0; i < 10; i++ {
		s.RunIteration()
	}
	if err := s.CheckFinite(); err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(s.Mass()-m0) / math.Abs(m0); rel > 1e-12 {
		t.Errorf("mass drift %.3e after 10 iterations", rel)
	}
}

func TestMassConservationMultiLevel(t *testing.T) {
	m := mesh.Cylinder(0.0005)
	s := NewState(m, DefaultParams())
	s.InitGaussian(1.0, 0.5, 0.5, 0.3, 2.0)
	m0 := s.Mass()
	for i := 0; i < 3; i++ {
		s.RunIteration()
	}
	if err := s.CheckFinite(); err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(s.Mass()-m0) / math.Abs(m0); rel > 1e-10 {
		t.Errorf("mass drift %.3e on multi-level mesh", rel)
	}
}

func TestUniformStateIsSteady(t *testing.T) {
	// A constant field has zero diffusion flux and divergence-free advection
	// on interior faces only — with zero-flux walls, upwind advection of a
	// constant still cancels between faces only if the velocity divergence
	// is zero cell-wise, which holds on a symmetric grid interior. We check
	// the weaker invariant: mass stays exactly constant.
	m := mesh.Cube(0.02)
	s := NewState(m, DefaultParams())
	s.InitUniform(3.0)
	m0 := s.Mass()
	s.RunIteration()
	if rel := math.Abs(s.Mass()-m0) / m0; rel > 1e-12 {
		t.Errorf("uniform-state mass drift %.3e", rel)
	}
}

func TestDiffusionSmoothsPeak(t *testing.T) {
	m := mesh.Strip([]temporal.Level{0, 0, 0, 0, 0, 0, 0})
	p := Params{Velocity: [3]float64{0, 0, 0}, Diffusion: 0.3, DtBase: 0.05}
	s := NewState(m, p)
	s.U[3] = 1.0 // delta spike
	peak0 := s.MaxAbs()
	for i := 0; i < 20; i++ {
		s.RunIteration()
	}
	if s.MaxAbs() >= peak0 {
		t.Errorf("diffusion did not reduce peak: %v -> %v", peak0, s.MaxAbs())
	}
	// Spike spreads to neighbours.
	if s.U[2] <= 0 || s.U[4] <= 0 {
		t.Errorf("diffusion did not spread: U = %v", s.U)
	}
}

func TestAdvectionMovesDownwind(t *testing.T) {
	levels := make([]temporal.Level, 20)
	m := mesh.Strip(levels)
	p := Params{Velocity: [3]float64{1, 0, 0}, Diffusion: 0, DtBase: 0.2}
	s := NewState(m, p)
	s.U[5] = 1.0
	com0 := centerOfMass(s)
	for i := 0; i < 10; i++ {
		s.RunIteration()
	}
	if com1 := centerOfMass(s); com1 <= com0 {
		t.Errorf("advection did not move mass downwind: %.3f -> %.3f", com0, com1)
	}
}

func centerOfMass(s *State) float64 {
	var num, den float64
	m := s.Mesh()
	for c := range s.U {
		w := s.U[c] * float64(m.Volume[c])
		num += w * float64(m.CX[c])
		den += w
	}
	if den == 0 {
		return 0
	}
	return num / den
}

func TestKernelPartitionInvariance(t *testing.T) {
	// Splitting the face and cell kernels into arbitrary chunks must give
	// the same result as one big call (this is what makes task decomposition
	// valid). Same phase ordering, different groupings.
	levels := []temporal.Level{0, 0, 1, 1, 0, 0}
	mA := mesh.Strip(levels)
	mB := mesh.Strip(levels)
	sA := NewState(mA, DefaultParams())
	sB := NewState(mB, DefaultParams())
	for c := range sA.U {
		sA.U[c] = float64(c) * 0.37
		sB.U[c] = float64(c) * 0.37
	}

	// Reference: RunIteration.
	sA.RunIteration()

	// Manual: same schedule but kernels invoked per-object.
	scheme := mB.Scheme()
	facesBy := make([][]int32, scheme.NumLevels())
	cellsBy := make([][]int32, scheme.NumLevels())
	for i, f := range mB.Faces {
		l := mB.Level[f.C0]
		if !f.IsBoundary() && mB.Level[f.C1] < l {
			l = mB.Level[f.C1]
		}
		facesBy[l] = append(facesBy[l], int32(i))
	}
	for c := 0; c < mB.NumCells(); c++ {
		cellsBy[mB.Level[c]] = append(cellsBy[mB.Level[c]], int32(c))
	}
	for sub := 0; sub < scheme.NumSubiterations(); sub++ {
		for _, tau := range scheme.ActiveLevels(sub) {
			for _, f := range facesBy[tau] {
				sB.ComputeFaces([]int32{f})
			}
			for _, c := range cellsBy[tau] {
				sB.UpdateCells([]int32{c})
			}
		}
	}
	for c := range sA.U {
		if math.Abs(sA.U[c]-sB.U[c]) > 1e-13 {
			t.Fatalf("cell %d: %v vs %v", c, sA.U[c], sB.U[c])
		}
	}
}

func TestBoundaryFacesAreNoOps(t *testing.T) {
	m := mesh.Strip([]temporal.Level{0, 0})
	s := NewState(m, DefaultParams())
	s.U[0], s.U[1] = 1, 2
	var boundary []int32
	for i := m.NumInteriorFaces; i < m.NumFaces(); i++ {
		boundary = append(boundary, int32(i))
	}
	s.ComputeFaces(boundary)
	for f := range s.AccL {
		if s.AccL[f] != 0 || s.AccR[f] != 0 {
			t.Errorf("boundary face accumulated flux at face %d: %v/%v", f, s.AccL[f], s.AccR[f])
		}
	}
}

// Property: mass invariance holds for any interleaving prefix, not just
// complete iterations (the accumulator argument).
func TestMassInvariantMidIterationProperty(t *testing.T) {
	f := func(seed int64, steps uint8) bool {
		levels := []temporal.Level{0, 1, 0, 2, 1, 0}
		m := mesh.Strip(levels)
		s := NewState(m, DefaultParams())
		rng := seed
		for c := range s.U {
			rng = rng*6364136223846793005 + 1442695040888963407
			s.U[c] = float64(rng%1000) / 250
		}
		m0 := s.Mass()
		// Apply a pseudo-random interleaving of kernels.
		for i := 0; i < int(steps%30); i++ {
			rng = rng*6364136223846793005 + 1442695040888963407
			if rng%2 == 0 {
				f := int32(uint64(rng>>8) % uint64(m.NumFaces()))
				s.ComputeFaces([]int32{f})
			} else {
				c := int32(uint64(rng>>8) % uint64(m.NumCells()))
				s.UpdateCells([]int32{c})
			}
		}
		return math.Abs(s.Mass()-m0) <= 1e-9*math.Max(1, math.Abs(m0))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFaceDtMatchesLevel(t *testing.T) {
	m := mesh.Strip([]temporal.Level{0, 2})
	p := DefaultParams()
	s := NewState(m, p)
	// Interior face between τ0 and τ2 → level 0 → dt = DtBase.
	if s.fdt[0] != p.DtBase {
		t.Errorf("interior face dt = %v, want %v", s.fdt[0], p.DtBase)
	}
}
