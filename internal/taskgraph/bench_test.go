package taskgraph

import (
	"context"
	"fmt"
	"testing"

	"tempart/internal/mesh"
	"tempart/internal/partition"
)

// BenchmarkTaskGraphBuild measures DAG construction over a paper-shaped
// decomposition (CYLINDER, 128 domains) serially and with the default
// parallel fan-out. The tasks/s metric is what the evaluation pipeline's
// throughput ultimately hangs off.
func BenchmarkTaskGraphBuild(b *testing.B) {
	m := mesh.Cylinder(0.005)
	res, err := partition.PartitionMesh(context.Background(), m, 128, partition.MCTL,
		partition.Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	for _, par := range []int{1, 0} {
		name := "serial"
		if par == 0 {
			name = "parallel"
		}
		b.Run(name, func(b *testing.B) {
			// Warm the mesh's lazy caches (cell→face adjacency) so the loop
			// times graph construction only.
			tg, err := Build(m, res.Part, 128, Options{Parallelism: par})
			if err != nil {
				b.Fatal(err)
			}
			tasks := tg.NumTasks()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Build(m, res.Part, 128, Options{Parallelism: par}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(tasks)*float64(b.N)/b.Elapsed().Seconds(), "tasks/s")
		})
	}
}

// BenchmarkBuildIterations tracks the multi-iteration DAG used by the deeper
// evaluation specs (tempartd's evaluate.iterations, partbench -repart).
func BenchmarkBuildIterations(b *testing.B) {
	m := mesh.Cylinder(0.002)
	res, err := partition.PartitionMesh(context.Background(), m, 64, partition.MCTL,
		partition.Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	for _, iters := range []int{1, 4} {
		b.Run(fmt.Sprintf("iters=%d", iters), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := BuildIterations(m, res.Part, 64, iters, Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
