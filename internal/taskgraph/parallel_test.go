package taskgraph

import (
	"context"
	"testing"

	"tempart/internal/mesh"
	"tempart/internal/partition"
)

// buildParts returns a representative decomposition for each test mesh.
func buildPart(t *testing.T, m *mesh.Mesh, domains int) []int32 {
	t.Helper()
	res, err := partition.PartitionMesh(context.Background(), m, domains, partition.MCTL,
		partition.Options{Seed: 1})
	if err != nil {
		t.Fatalf("partition %s: %v", m.Name, err)
	}
	return res.Part
}

func graphsIdentical(t *testing.T, want, got *TaskGraph, label string) {
	t.Helper()
	if len(want.Tasks) != len(got.Tasks) {
		t.Fatalf("%s: %d tasks, serial has %d", label, len(got.Tasks), len(want.Tasks))
	}
	for i := range want.Tasks {
		if want.Tasks[i] != got.Tasks[i] {
			t.Fatalf("%s: task %d = %+v, serial has %+v", label, i, got.Tasks[i], want.Tasks[i])
		}
	}
	if len(want.PredStart) != len(got.PredStart) {
		t.Fatalf("%s: PredStart length %d, serial has %d", label, len(got.PredStart), len(want.PredStart))
	}
	for i := range want.PredStart {
		if want.PredStart[i] != got.PredStart[i] {
			t.Fatalf("%s: PredStart[%d] = %d, serial has %d", label, i, got.PredStart[i], want.PredStart[i])
		}
	}
	if len(want.Preds) != len(got.Preds) {
		t.Fatalf("%s: %d pred edges, serial has %d", label, len(got.Preds), len(want.Preds))
	}
	for i := range want.Preds {
		if want.Preds[i] != got.Preds[i] {
			t.Fatalf("%s: Preds[%d] = %d, serial has %d", label, i, got.Preds[i], want.Preds[i])
		}
	}
	if len(want.Objects) != len(got.Objects) {
		t.Fatalf("%s: %d object lists, serial has %d", label, len(got.Objects), len(want.Objects))
	}
	for i := range want.Objects {
		if len(want.Objects[i]) != len(got.Objects[i]) {
			t.Fatalf("%s: Objects[%d] has %d ids, serial has %d",
				label, i, len(got.Objects[i]), len(want.Objects[i]))
		}
		for j := range want.Objects[i] {
			if want.Objects[i][j] != got.Objects[i][j] {
				t.Fatalf("%s: Objects[%d][%d] = %d, serial has %d",
					label, i, j, got.Objects[i][j], want.Objects[i][j])
			}
		}
	}
}

// TestBuildParallelByteIdentical pins the tentpole determinism contract: the
// DAG emitted by a parallel Build (tasks, PredStart, Preds, Objects) is
// byte-identical to the serial build at every parallelism, on every
// generator mesh family.
func TestBuildParallelByteIdentical(t *testing.T) {
	meshes := []*mesh.Mesh{
		mesh.Cylinder(0.002),
		mesh.Cube(0.002),
		mesh.Nozzle(0.002),
	}
	for _, m := range meshes {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			part := buildPart(t, m, 12)
			serial, err := BuildIterations(m, part, 12, 2,
				Options{RecordObjects: true, Parallelism: 1})
			if err != nil {
				t.Fatal(err)
			}
			if err := serial.Validate(); err != nil {
				t.Fatal(err)
			}
			for _, par := range []int{2, 8} {
				got, err := BuildIterations(m, part, 12, 2,
					Options{RecordObjects: true, Parallelism: par})
				if err != nil {
					t.Fatal(err)
				}
				graphsIdentical(t, serial, got, m.Name)
			}
		})
	}
}

// TestBuildDefaultParallelismMatchesSerial covers the Parallelism: 0 default
// (one worker per core) against the pinned serial output.
func TestBuildDefaultParallelismMatchesSerial(t *testing.T) {
	m := mesh.Cylinder(0.002)
	part := buildPart(t, m, 8)
	serial, err := Build(m, part, 8, Options{RecordObjects: true, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Build(m, part, 8, Options{RecordObjects: true})
	if err != nil {
		t.Fatal(err)
	}
	graphsIdentical(t, serial, got, "default parallelism")
}

// TestBuildScratchReuse exercises the sync.Pool scratch across many builds
// with varying sizes, so a stale marker/epoch would surface as a wrong DAG.
func TestBuildScratchReuse(t *testing.T) {
	m := mesh.Cylinder(0.002)
	part := buildPart(t, m, 8)
	want, err := Build(m, part, 8, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	smallMesh := mesh.Cube(0.001)
	smallPart := buildPart(t, smallMesh, 4)
	for i := 0; i < 5; i++ {
		got, err := Build(m, part, 8, Options{Parallelism: 2})
		if err != nil {
			t.Fatal(err)
		}
		graphsIdentical(t, want, got, "reuse")
		// Interleave a smaller build so scratch arenas shrink and regrow.
		if _, err := Build(smallMesh, smallPart, 4, Options{Parallelism: 2}); err != nil {
			t.Fatal(err)
		}
	}
}
