package taskgraph

import (
	"context"
	"testing"
	"testing/quick"

	"tempart/internal/mesh"
	"tempart/internal/partition"
	"tempart/internal/temporal"
)

// uniformStrip builds a strip mesh of n cells all at level 0 and a trivial
// 1-domain decomposition.
func buildStrip(t *testing.T, levels []temporal.Level, part []int32, k int) (*mesh.Mesh, *TaskGraph) {
	t.Helper()
	m := mesh.Strip(levels)
	if part == nil {
		part = make([]int32, len(levels))
		k = 1
	}
	tg, err := Build(m, part, k, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tg.Validate(); err != nil {
		t.Fatal(err)
	}
	return m, tg
}

func TestSingleLevelSingleDomain(t *testing.T) {
	// 4 level-0 cells, one domain: one subiteration, one phase, two tasks
	// (faces then cells), no external tasks.
	_, tg := buildStrip(t, []temporal.Level{0, 0, 0, 0}, nil, 1)
	if tg.NumTasks() != 2 {
		t.Fatalf("NumTasks = %d, want 2 (faces+cells)", tg.NumTasks())
	}
	if tg.Tasks[0].Kind != FaceKind || tg.Tasks[1].Kind != CellKind {
		t.Error("faces must precede cells within a phase")
	}
	if tg.Tasks[0].External || tg.Tasks[1].External {
		t.Error("single domain must produce internal tasks only")
	}
	// Cells depend on faces.
	preds := tg.PredsOf(1)
	if len(preds) != 1 || preds[0] != 0 {
		t.Errorf("cell task preds = %v, want [0]", preds)
	}
}

func TestTwoLevelSubiterationStructure(t *testing.T) {
	// Levels {0,1}: 2 subiterations. Sub 0 has phases τ=1 then τ=0; sub 1
	// only τ=0.
	_, tg := buildStrip(t, []temporal.Level{0, 0, 1, 1}, nil, 1)
	// Expected tasks: sub0: faces(1), cells(1), faces(0), cells(0);
	// sub1: faces(0), cells(0) → 6 tasks.
	if tg.NumTasks() != 6 {
		t.Fatalf("NumTasks = %d, want 6", tg.NumTasks())
	}
	wantSub := []int32{0, 0, 0, 0, 1, 1}
	wantTau := []temporal.Level{1, 1, 0, 0, 0, 0}
	for i := range wantSub {
		if tg.Tasks[i].Sub != wantSub[i] || tg.Tasks[i].Tau != wantTau[i] {
			t.Errorf("task %d = sub %d τ%d, want sub %d τ%d",
				i, tg.Tasks[i].Sub, tg.Tasks[i].Tau, wantSub[i], wantTau[i])
		}
	}
}

// TestFaceLevelIsMinOfCells pins the face-level rule.
func TestFaceLevelIsMinOfCells(t *testing.T) {
	m := mesh.Strip([]temporal.Level{0, 1})
	// Interior face between levels 0 and 1 → level 0.
	if got := faceLevel(m, m.Faces[0]); got != 0 {
		t.Errorf("faceLevel = %d, want 0", got)
	}
	// Boundary face of cell 1 → level 1.
	for _, f := range m.Faces[m.NumInteriorFaces:] {
		want := m.Level[f.C0]
		if got := faceLevel(m, f); got != want {
			t.Errorf("boundary faceLevel = %d, want %d", got, want)
		}
	}
}

func TestExternalTasksAppearAtDomainBorder(t *testing.T) {
	// Two domains split in the middle of a level-0 strip.
	part := []int32{0, 0, 1, 1}
	_, tg := buildStrip(t, []temporal.Level{0, 0, 0, 0}, part, 2)
	var extFaces, extCells, intCells int
	for i := range tg.Tasks {
		switch {
		case tg.Tasks[i].External && tg.Tasks[i].Kind == FaceKind:
			extFaces++
		case tg.Tasks[i].External && tg.Tasks[i].Kind == CellKind:
			extCells++
		case tg.Tasks[i].Kind == CellKind:
			intCells++
		}
	}
	// The cut face belongs to one domain → 1 external face task. Both
	// domains have one border cell → 2 external cell tasks.
	if extFaces != 1 {
		t.Errorf("external face tasks = %d, want 1", extFaces)
	}
	if extCells != 2 {
		t.Errorf("external cell tasks = %d, want 2", extCells)
	}
	if intCells != 2 {
		t.Errorf("internal cell tasks = %d, want 2", intCells)
	}
}

// TestFig8TaskGraphShape reproduces the paper's Figure 8 contrast on a
// 3-level mesh split into 2 domains two ways: a level-segregating partition
// (SC_OC-like) makes the first phase generate tasks in only one domain,
// while a level-balancing partition (MC_TL-like) doubles the first-phase
// task count.
func TestFig8TaskGraphShape(t *testing.T) {
	// 12 cells: levels 0,0,1,1,2,2,2,2,1,1,0,0 — symmetric so both
	// partitions are contiguous.
	levels := []temporal.Level{0, 0, 1, 1, 2, 2, 2, 2, 1, 1, 0, 0}
	m := mesh.Strip(levels)

	// Segregating split: domain 1 holds every τ=2 cell, domain 0 the rest.
	segPart := []int32{0, 0, 0, 0, 1, 1, 1, 1, 0, 0, 0, 0}
	// Balancing split: each domain gets one τ0 pair... i.e. equal counts of
	// every level (mirror halves of the symmetric strip).
	balPart := []int32{0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1}

	tgSeg, err := Build(m, segPart, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tgBal, err := Build(m, balPart, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}

	phaseTasks := func(tg *TaskGraph, tau temporal.Level) map[int32]int {
		got := map[int32]int{}
		for i := range tg.Tasks {
			if tg.Tasks[i].Sub == 0 && tg.Tasks[i].Tau == tau {
				got[tg.Tasks[i].Domain]++
			}
		}
		return got
	}
	// First phase (τ=2): segregated → only domain 1 contributes.
	seg := phaseTasks(tgSeg, 2)
	if len(seg) != 1 {
		t.Errorf("segregated τ2 phase spans %d domains, want 1 (%v)", len(seg), seg)
	}
	// Balanced → both domains contribute.
	bal := phaseTasks(tgBal, 2)
	if len(bal) != 2 {
		t.Errorf("balanced τ2 phase spans %d domains, want 2 (%v)", len(bal), bal)
	}
	// And the balanced graph has strictly more tasks in the first phase.
	if sum(bal) <= sum(seg) {
		t.Errorf("balanced first-phase tasks %d not greater than segregated %d", sum(bal), sum(seg))
	}
}

func sum(m map[int32]int) int {
	s := 0
	for _, v := range m {
		s += v
	}
	return s
}

// TestWorkConservation: total cell-task work equals the temporal scheme's
// iteration work regardless of partitioning (the paper stresses both
// strategies perform the same operations).
func TestWorkConservation(t *testing.T) {
	m := mesh.Cylinder(0.0005)
	scheme := m.Scheme()
	wantCellWork := scheme.IterationWork(m.Census())

	for _, strat := range []partition.Strategy{partition.SCOC, partition.MCTL} {
		r, err := partition.PartitionMesh(context.Background(), m, 4, strat, partition.Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		tg, err := Build(m, r.Part, 4, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := tg.Validate(); err != nil {
			t.Fatal(err)
		}
		var cellWork int64
		for i := range tg.Tasks {
			if tg.Tasks[i].Kind == CellKind {
				cellWork += tg.Tasks[i].Cost
			}
		}
		if cellWork != wantCellWork {
			t.Errorf("%v: cell work %d, want %d", strat, cellWork, wantCellWork)
		}
	}
}

// TestSubiterationOrdering: every cross-subiteration dependency points
// backwards, and cell tasks of subiteration s>0 transitively depend on
// earlier subiterations (the strong ordering the paper describes).
func TestSubiterationOrdering(t *testing.T) {
	m := mesh.Cube(0.02)
	part := make([]int32, m.NumCells())
	for c := range part {
		part[c] = int32(c % 4)
	}
	tg, err := Build(m, part, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range tg.Tasks {
		for _, p := range tg.PredsOf(int32(i)) {
			if tg.Tasks[p].Sub > tg.Tasks[i].Sub {
				t.Fatalf("task %d (sub %d) depends on later subiteration task %d (sub %d)",
					i, tg.Tasks[i].Sub, p, tg.Tasks[p].Sub)
			}
		}
	}
	// Each level-0 cell task at sub s>0 must depend on at least one task of
	// an earlier subiteration (its previous update).
	for i := range tg.Tasks {
		tk := &tg.Tasks[i]
		if tk.Kind != CellKind || tk.Tau != 0 || tk.Sub == 0 {
			continue
		}
		found := false
		for _, p := range tg.PredsOf(int32(i)) {
			if tg.Tasks[p].Sub < tk.Sub {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("level-0 cell task %d at sub %d has no earlier-sub dependency", i, tk.Sub)
		}
	}
}

func TestCriticalPathBounds(t *testing.T) {
	m := mesh.Cylinder(0.0005)
	part := make([]int32, m.NumCells())
	tg, err := Build(m, part, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cp := tg.CriticalPath()
	tw := tg.TotalWork()
	if cp <= 0 || cp > tw {
		t.Errorf("critical path %d outside (0, %d]", cp, tw)
	}
	// Single domain: every phase serializes (faces→cells chains through the
	// whole domain), so the critical path must be a large share of total.
	if float64(cp) < 0.5*float64(tw) {
		t.Errorf("1-domain critical path %d suspiciously short vs work %d", cp, tw)
	}
}

func TestSuccsTransposeConsistent(t *testing.T) {
	m := mesh.Cube(0.02)
	part := make([]int32, m.NumCells())
	for c := range part {
		part[c] = int32(c % 3)
	}
	tg, err := Build(m, part, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Every pred edge appears exactly once as a succ edge.
	count := 0
	for t2 := 0; t2 < tg.NumTasks(); t2++ {
		for _, p := range tg.PredsOf(int32(t2)) {
			found := false
			for _, s := range tg.SuccsOf(p) {
				if s == int32(t2) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("edge %d->%d missing from transpose", p, t2)
			}
			count++
		}
	}
	if count != tg.NumDeps() {
		t.Errorf("edge count %d != NumDeps %d", count, tg.NumDeps())
	}
}

func TestCostModelOptions(t *testing.T) {
	m := mesh.Strip([]temporal.Level{0, 0})
	part := []int32{0, 0}
	tg, err := Build(m, part, 1, Options{FaceCost: 3, CellCost: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := range tg.Tasks {
		tk := &tg.Tasks[i]
		var unit int64 = 5
		if tk.Kind == FaceKind {
			unit = 3
		}
		if tk.Cost != unit*int64(tk.NumObjects) {
			t.Errorf("task %d cost %d, want %d", i, tk.Cost, unit*int64(tk.NumObjects))
		}
	}
}

func TestBuildRejectsBadPart(t *testing.T) {
	m := mesh.Strip([]temporal.Level{0, 0, 0})
	if _, err := Build(m, []int32{0}, 1, Options{}); err == nil {
		t.Fatal("Build accepted wrong-length part")
	}
}

// Property: task generation is deterministic and the number of tasks per
// (sub, τ, domain, kind, external) tuple is at most 1.
func TestTaskTupleUniquenessProperty(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		k := 2 + int(kRaw%5)
		m := mesh.Cube(0.01)
		r, err := partition.PartitionMesh(context.Background(), m, k, partition.MCTL, partition.Options{Seed: seed})
		if err != nil {
			return false
		}
		tg, err := Build(m, r.Part, k, Options{})
		if err != nil {
			return false
		}
		type key struct {
			sub  int32
			tau  temporal.Level
			d    int32
			kind Kind
			ext  bool
		}
		seen := map[key]bool{}
		for i := range tg.Tasks {
			tk := &tg.Tasks[i]
			kk := key{tk.Sub, tk.Tau, tk.Domain, tk.Kind, tk.External}
			if seen[kk] {
				return false
			}
			seen[kk] = true
		}
		return tg.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// TestMCTLProducesMoreFirstPhaseTasks verifies the paper's granularity
// observation at mesh scale: MC_TL injects tasks from every domain into the
// first subiteration's coarse phases, SC_OC from only a few.
func TestMCTLProducesMoreFirstPhaseTasks(t *testing.T) {
	m := mesh.Cylinder(0.001)
	k := 8
	domainsInPhase := func(strat partition.Strategy) int {
		r, err := partition.PartitionMesh(context.Background(), m, k, strat, partition.Options{Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		tg, err := Build(m, r.Part, k, Options{})
		if err != nil {
			t.Fatal(err)
		}
		ds := map[int32]bool{}
		for i := range tg.Tasks {
			if tg.Tasks[i].Sub == 0 && tg.Tasks[i].Tau == m.MaxLevel && tg.Tasks[i].Kind == CellKind {
				ds[tg.Tasks[i].Domain] = true
			}
		}
		return len(ds)
	}
	sc, mc := domainsInPhase(partition.SCOC), domainsInPhase(partition.MCTL)
	if mc < sc {
		t.Errorf("MC_TL first-phase domains %d < SC_OC %d", mc, sc)
	}
	if mc != k {
		t.Errorf("MC_TL first-phase domains = %d, want all %d", mc, k)
	}
}

func TestRecordObjects(t *testing.T) {
	m := mesh.Cube(0.02)
	part := make([]int32, m.NumCells())
	for c := range part {
		part[c] = int32(c % 3)
	}
	tg, err := Build(m, part, 3, Options{RecordObjects: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tg.Objects) != tg.NumTasks() {
		t.Fatalf("Objects length %d, want %d", len(tg.Objects), tg.NumTasks())
	}
	scheme := m.Scheme()
	// Per subiteration, cell tasks' objects must cover exactly the active
	// cells, each once.
	for sub := 0; sub < scheme.NumSubiterations(); sub++ {
		seen := map[int32]int{}
		for i := range tg.Tasks {
			tk := &tg.Tasks[i]
			if tk.Sub != int32(sub) || tk.Kind != CellKind {
				continue
			}
			if int(tk.NumObjects) != len(tg.Objects[i]) {
				t.Fatalf("task %d NumObjects %d != len(Objects) %d", i, tk.NumObjects, len(tg.Objects[i]))
			}
			for _, c := range tg.Objects[i] {
				seen[c]++
			}
		}
		for c := 0; c < m.NumCells(); c++ {
			want := 0
			if scheme.Active(sub, m.Level[c]) {
				want = 1
			}
			if seen[int32(c)] != want {
				t.Fatalf("sub %d: cell %d covered %d times, want %d", sub, c, seen[int32(c)], want)
			}
		}
	}
}

func TestBuildIterationsChains(t *testing.T) {
	m := mesh.Cube(0.02)
	part := make([]int32, m.NumCells())
	for c := range part {
		part[c] = int32(c % 4)
	}
	one, err := Build(m, part, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	three, err := BuildIterations(m, part, 4, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := three.Validate(); err != nil {
		t.Fatal(err)
	}
	if three.NumTasks() != 3*one.NumTasks() {
		t.Errorf("3-iteration tasks = %d, want %d", three.NumTasks(), 3*one.NumTasks())
	}
	if three.TotalWork() != 3*one.TotalWork() {
		t.Errorf("3-iteration work = %d, want %d", three.TotalWork(), 3*one.TotalWork())
	}
	// Cross-iteration dependencies exist, and iterations are ordered.
	crossDeps := 0
	for i := range three.Tasks {
		for _, p := range three.PredsOf(int32(i)) {
			if three.Tasks[p].Iter > three.Tasks[i].Iter {
				t.Fatalf("task %d (iter %d) depends on later iteration", i, three.Tasks[i].Iter)
			}
			if three.Tasks[p].Iter < three.Tasks[i].Iter {
				crossDeps++
			}
		}
	}
	if crossDeps == 0 {
		t.Error("no cross-iteration dependencies — iterations are disconnected")
	}
	if _, err := BuildIterations(m, part, 4, 0, Options{}); err == nil {
		t.Error("accepted 0 iterations")
	}
}

// TestIterationPipelining: scheduling n chained iterations beats n barrier-
// separated runs for an imbalanced (SC_OC-style) decomposition, because idle
// tails overlap the next iteration's head.
func TestIterationPipelining(t *testing.T) {
	m := mesh.Cylinder(0.0005)
	r, err := partition.PartitionMesh(context.Background(), m, 8, partition.SCOC, partition.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	one, err := Build(m, r.Part, 8, Options{})
	if err != nil {
		t.Fatal(err)
	}
	four, err := BuildIterations(m, r.Part, 8, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Critical paths: the chained graph's CP must be under 4× the single
	// iteration's CP only if chaining allows overlap... it does not shorten
	// CP (same chain), but the *makespan* on a bounded cluster should be
	// under 4× the single-iteration makespan.
	cp1, cp4 := one.CriticalPath(), four.CriticalPath()
	if cp4 > 4*cp1 {
		t.Errorf("chained CP %d exceeds 4x single CP %d", cp4, cp1)
	}
}
