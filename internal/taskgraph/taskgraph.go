// Package taskgraph implements the paper's Algorithm 1: generating the task
// DAG of one solver iteration from a mesh, its temporal levels, and a domain
// decomposition.
//
// One iteration is divided into 2^τmax subiterations. Each subiteration
// contains one phase per active temporal level, traversed in descending
// order. A phase dedicated to level τ processes, for every domain, first the
// faces of level τ and then the cells of level τ, each split into one task
// for *external* objects (those bordering another domain — the tasks whose
// results must be communicated) and one for *internal* objects. Empty tasks
// are not generated, which is exactly why partitioning controls the task
// graph's shape: a domain with no cells of level τ injects nothing into
// phase τ (paper Fig. 8).
//
// Dependencies follow the data flow of the explicit scheme:
//   - a face task reads its adjacent cells → depends on the latest tasks
//     that wrote those cells (possibly in an earlier phase of the same
//     subiteration, since coarser levels update first, or in an earlier
//     subiteration);
//   - a cell task consumes its faces' fluxes → depends on the latest tasks
//     that wrote those faces;
//   - successive updates of the same object serialize (write-after-write).
//
// Cross-domain dependencies (a task of domain A depending on a task of
// domain B) are the communications; internal/external task splitting lets a
// runtime overlap them.
//
// Construction is allocation-lean and optionally parallel. Within one
// (iter, sub, τ, kind) group the tasks write pairwise-disjoint object sets —
// each face/cell belongs to exactly one (domain, level, external) bucket —
// and face tasks only read cell writers (updated by the preceding cell
// groups) while cell tasks only read face writers (committed by the face
// group of the same phase). Every predecessor therefore has an ID below the
// group's first ID, so the group's tasks can discover their preds in
// parallel shards with a serial in-order commit, and the emitted DAG is
// byte-identical to the serial build at every parallelism.
package taskgraph

import (
	"fmt"
	"slices"
	"sync"
	"sync/atomic"

	"tempart/internal/graph"
	"tempart/internal/mesh"
	"tempart/internal/obs"
	"tempart/internal/temporal"
)

// Kind distinguishes face-processing tasks from cell-processing tasks.
type Kind uint8

const (
	// FaceKind tasks compute fluxes across faces.
	FaceKind Kind = iota
	// CellKind tasks update cell values from accumulated fluxes.
	CellKind
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k == FaceKind {
		return "faces"
	}
	return "cells"
}

// Task is one node of the DAG.
type Task struct {
	// ID is the task's index in TaskGraph.Tasks; predecessors always have
	// smaller IDs (construction order is a topological order).
	ID int32
	// Iter is the iteration the task belongs to (0 for single-iteration
	// graphs).
	Iter int32
	// Sub is the subiteration within the iteration, in [0, 2^τmax).
	Sub int32
	// Tau is the phase's temporal level.
	Tau temporal.Level
	// Kind is faces or cells.
	Kind Kind
	// Domain is the extraction domain.
	Domain int32
	// External marks tasks over objects bordering another domain.
	External bool
	// NumObjects is how many faces/cells the task processes.
	NumObjects int32
	// Cost is the task's work in abstract units.
	Cost int64
}

// TaskGraph is the DAG of one iteration.
type TaskGraph struct {
	Tasks []Task
	// PredStart/Preds form a CSR list of each task's dependencies.
	PredStart []int32
	Preds     []int32
	// SuccStart/Succs is the transposed CSR (built on demand via SuccsOf).
	SuccStart []int32
	Succs     []int32

	// Objects[t] lists the face/cell ids task t processes; populated only
	// when Options.RecordObjects is set.
	Objects [][]int32

	NumDomains int
	Scheme     temporal.Scheme

	// Lazily computed derived data, guarded so that many simulations can
	// share one graph concurrently (the eval fan-out does exactly that).
	// Task costs must not be mutated after the first SuccsOf/CriticalPath/
	// TotalWork call.
	lazyMu      sync.Mutex
	succsReady  atomic.Bool
	boundsReady atomic.Bool
	cp          int64
	totalWork   int64
}

// Options tunes task generation.
type Options struct {
	// FaceCost and CellCost are the work units per processed face/cell.
	// Zero values default to 1.
	FaceCost, CellCost int32
	// RecordObjects stores each task's object-id list in TaskGraph.Objects
	// so an executor can run real kernels over them. Lists alias shared
	// group storage and must be treated as read-only.
	RecordObjects bool
	// Parallelism bounds the workers used for dependency discovery: 0 (or
	// negative) means one per core, 1 means strictly serial. The emitted
	// graph is byte-identical at every setting.
	Parallelism int
	// Obs, when non-nil, records build-phase spans (classify/group/census/
	// discover) into the given recorder. Nil (the default) is a
	// zero-allocation no-op and never perturbs the build.
	Obs *obs.Recorder
}

func (o Options) withDefaults() Options {
	if o.FaceCost == 0 {
		o.FaceCost = 1
	}
	if o.CellCost == 0 {
		o.CellCost = 1
	}
	return o
}

// NumTasks returns the task count.
func (tg *TaskGraph) NumTasks() int { return len(tg.Tasks) }

// NumDeps returns the dependency-edge count.
func (tg *TaskGraph) NumDeps() int { return len(tg.Preds) }

// PredsOf returns the dependency list of task t (aliases internal storage).
func (tg *TaskGraph) PredsOf(t int32) []int32 { return tg.Preds[tg.PredStart[t]:tg.PredStart[t+1]] }

// SuccsOf returns the successor list of task t, building the transpose on
// first use. Safe for concurrent use.
func (tg *TaskGraph) SuccsOf(t int32) []int32 {
	if !tg.succsReady.Load() {
		tg.ensureSuccs()
	}
	return tg.Succs[tg.SuccStart[t]:tg.SuccStart[t+1]]
}

func (tg *TaskGraph) ensureSuccs() {
	tg.lazyMu.Lock()
	defer tg.lazyMu.Unlock()
	if tg.succsReady.Load() {
		return
	}
	if tg.SuccStart == nil {
		tg.buildSuccs()
	}
	tg.succsReady.Store(true)
}

func (tg *TaskGraph) buildSuccs() {
	n := len(tg.Tasks)
	deg := make([]int32, n+1)
	for _, p := range tg.Preds {
		deg[p+1]++
	}
	for i := 0; i < n; i++ {
		deg[i+1] += deg[i]
	}
	succs := make([]int32, len(tg.Preds))
	fill := make([]int32, n)
	copy(fill, deg[:n])
	for t := 0; t < n; t++ {
		for _, p := range tg.PredsOf(int32(t)) {
			succs[fill[p]] = int32(t)
			fill[p]++
		}
	}
	tg.SuccStart, tg.Succs = deg, succs
}

// TotalWork returns the summed cost of all tasks (cached after first call;
// safe for concurrent use).
func (tg *TaskGraph) TotalWork() int64 {
	if !tg.boundsReady.Load() {
		tg.ensureBounds()
	}
	return tg.totalWork
}

// CriticalPath returns the longest cost-weighted path through the DAG — the
// absolute lower bound on any schedule's makespan regardless of core count.
// Cached after the first call; safe for concurrent use.
func (tg *TaskGraph) CriticalPath() int64 {
	if !tg.boundsReady.Load() {
		tg.ensureBounds()
	}
	return tg.cp
}

func (tg *TaskGraph) ensureBounds() {
	tg.lazyMu.Lock()
	defer tg.lazyMu.Unlock()
	if tg.boundsReady.Load() {
		return
	}
	finish := make([]int64, len(tg.Tasks))
	var cp, work int64
	for t := range tg.Tasks {
		var start int64
		for _, p := range tg.PredsOf(int32(t)) {
			if finish[p] > start {
				start = finish[p]
			}
		}
		finish[t] = start + tg.Tasks[t].Cost
		if finish[t] > cp {
			cp = finish[t]
		}
		work += tg.Tasks[t].Cost
	}
	tg.cp, tg.totalWork = cp, work
	tg.boundsReady.Store(true)
}

// Validate checks DAG invariants: topological IDs, in-range domains and
// subiterations, sorted unique preds, positive costs for non-empty tasks.
func (tg *TaskGraph) Validate() error {
	nsub := int32(tg.Scheme.NumSubiterations())
	for i := range tg.Tasks {
		t := &tg.Tasks[i]
		if t.ID != int32(i) {
			return fmt.Errorf("taskgraph: task %d has ID %d", i, t.ID)
		}
		if t.Sub < 0 || t.Sub >= nsub {
			return fmt.Errorf("taskgraph: task %d subiteration %d out of range", i, t.Sub)
		}
		if t.Domain < 0 || int(t.Domain) >= tg.NumDomains {
			return fmt.Errorf("taskgraph: task %d domain %d out of range", i, t.Domain)
		}
		if t.NumObjects <= 0 {
			return fmt.Errorf("taskgraph: task %d is empty", i)
		}
		if t.Cost <= 0 {
			return fmt.Errorf("taskgraph: task %d has cost %d", i, t.Cost)
		}
		preds := tg.PredsOf(int32(i))
		for j, p := range preds {
			if p >= int32(i) {
				return fmt.Errorf("taskgraph: task %d depends on later task %d", i, p)
			}
			if j > 0 && preds[j-1] >= p {
				return fmt.Errorf("taskgraph: task %d preds not sorted-unique", i)
			}
		}
	}
	return nil
}

// faceLevel is the temporal level of a face: the finer (minimum) level of
// its adjacent cells, or the cell's own level for boundary faces.
func faceLevel(m *mesh.Mesh, f mesh.Face) temporal.Level {
	l := m.Level[f.C0]
	if !f.IsBoundary() && m.Level[f.C1] < l {
		l = m.Level[f.C1]
	}
	return l
}

// Build generates the task graph of one iteration for the given domain
// decomposition (part[cell] ∈ [0, numDomains)).
func Build(m *mesh.Mesh, part []int32, numDomains int, opt Options) (*TaskGraph, error) {
	return BuildIterations(m, part, numDomains, 1, opt)
}

// buildScratch is the per-shard scratch arena for dependency discovery: an
// epoch-stamped marker array replaces the per-task dedup map (marker[w] ==
// epoch means writer w is already recorded for the current task), and preds/
// counts accumulate the shard's discovered edges for the serial commit pass.
type buildScratch struct {
	marker []int32
	epoch  int32
	preds  []int32
	counts []int32
}

var scratchPool = sync.Pool{New: func() any { return new(buildScratch) }}

// getScratch returns a scratch whose marker covers numTasks ids and whose
// epoch can advance by numTasks without wrapping. A freshly zeroed marker is
// safe at any epoch ≥ 1 because stale entries are never larger than the
// epoch they were written at.
func getScratch(numTasks int) *buildScratch {
	s := scratchPool.Get().(*buildScratch)
	if len(s.marker) < numTasks {
		s.marker = make([]int32, numTasks)
	}
	if s.epoch > 1<<30 {
		clear(s.marker)
		s.epoch = 0
	}
	return s
}

// pendingTask is one not-yet-committed task of the current phase group.
type pendingTask struct {
	domain   int32
	external bool
	objs     []int32
}

// BuildIterations chains several iterations into one DAG without a global
// barrier between them: the first tasks of iteration i+1 depend only on the
// tasks of iteration i that last wrote the objects they touch, so a process
// that finishes its share of an iteration early can start the next one —
// cross-iteration pipelining, which is how the task-based FLUSEPA overlaps
// iterations in production.
func BuildIterations(m *mesh.Mesh, part []int32, numDomains, iterations int, opt Options) (*TaskGraph, error) {
	if len(part) != m.NumCells() {
		return nil, fmt.Errorf("taskgraph: %d domain assignments for %d cells", len(part), m.NumCells())
	}
	if iterations < 1 {
		return nil, fmt.Errorf("taskgraph: iterations = %d, want >= 1", iterations)
	}
	opt = opt.withDefaults()
	scheme := m.Scheme()
	tg := &TaskGraph{NumDomains: numDomains, Scheme: scheme}

	root := opt.Obs.Start("taskgraph/build")
	if root.Active() {
		root.SetInt("cells", int64(m.NumCells()))
		root.SetInt("faces", int64(m.NumFaces()))
		root.SetInt("domains", int64(numDomains))
		root.SetInt("iterations", int64(iterations))
	}

	// Classify cells: external iff some face-neighbour is in another domain.
	clspan := root.Start("taskgraph/classify")
	nc := m.NumCells()
	cellExternal := make([]bool, nc)
	for _, f := range m.Faces[:m.NumInteriorFaces] {
		if part[f.C0] != part[f.C1] {
			cellExternal[f.C0] = true
			cellExternal[f.C1] = true
		}
	}
	// Face ownership and externality: interior cut faces belong to C0's
	// domain and are external; same-domain and boundary faces are internal.
	nf := m.NumFaces()
	faceDomain := make([]int32, nf)
	faceExternal := make([]bool, nf)
	for i, f := range m.Faces {
		faceDomain[i] = part[f.C0]
		if !f.IsBoundary() && part[f.C0] != part[f.C1] {
			faceExternal[i] = true
		}
	}

	clspan.End()

	// Group objects by (domain, level, external) once; reused every
	// activation of that level.
	gspan := root.Start("taskgraph/group")
	numLevels := scheme.NumLevels()
	cellGroups := groupObjects(nc, numDomains, numLevels,
		func(i int32) (int32, temporal.Level, bool) { return part[i], m.Level[i], cellExternal[i] })
	faceGroups := groupObjects(nf, numDomains, numLevels,
		func(i int32) (int32, temporal.Level, bool) {
			return faceDomain[i], faceLevel(m, m.Faces[i]), faceExternal[i]
		})

	gspan.End()

	// Phase schedule, hoisted out of the iteration loop.
	cspan := root.Start("taskgraph/census")
	nsub := scheme.NumSubiterations()
	levelsBySub := make([][]temporal.Level, nsub)
	for sub := 0; sub < nsub; sub++ {
		levelsBySub[sub] = scheme.ActiveLevels(sub)
	}

	// Exact task census: every non-empty (domain, ext) bucket of level τ
	// emits one task per activation of τ per iteration, for each kind.
	activations := make([]int, numLevels)
	for sub := 0; sub < nsub; sub++ {
		for _, tau := range levelsBySub[sub] {
			activations[tau]++
		}
	}
	totalTasks := 0
	for tau := 0; tau < numLevels; tau++ {
		nonEmpty := faceGroups.countNonEmpty(numDomains, tau) + cellGroups.countNonEmpty(numDomains, tau)
		totalTasks += activations[tau] * nonEmpty
	}
	totalTasks *= iterations
	cspan.End()

	tg.Tasks = make([]Task, 0, totalTasks)
	if opt.RecordObjects {
		tg.Objects = make([][]int32, 0, totalTasks)
	}
	predStart := make([]int32, 1, totalTasks+1)
	preds := make([]int32, 0, 4*totalTasks)

	// Last-writer tracking for dependency discovery.
	lastCellWriter := make([]int32, nc)
	lastFaceWriter := make([]int32, nf)
	for i := range lastCellWriter {
		lastCellWriter[i] = -1
	}
	for i := range lastFaceWriter {
		lastFaceWriter[i] = -1
	}

	pool := graph.NewPool(opt.Parallelism)
	width := pool.Width()
	scratches := make([]*buildScratch, width)
	for i := range scratches {
		scratches[i] = getScratch(totalTasks)
	}
	defer func() {
		for _, s := range scratches {
			scratchPool.Put(s)
		}
	}()
	if nc > 0 && width > 1 {
		m.CellFaces(0) // force the lazy cell→face index before fanning out
	}

	pending := make([]pendingTask, 0, numDomains*2)
	kinds := [2]Kind{FaceKind, CellKind}

	// discover finds the preds of pending[pi] (committed as task id) into
	// scratch s and updates the last-writer maps. Tasks of one group write
	// disjoint objects, so concurrent discover calls never write the same
	// last-writer entry, and every pred they read predates the group.
	discover := func(s *buildScratch, pi int, id int32, kind Kind) {
		pt := &pending[pi]
		s.epoch++
		e := s.epoch
		base := len(s.preds)
		if kind == FaceKind {
			for _, f := range pt.objs {
				face := m.Faces[f]
				// Read adjacent cells.
				if w := lastCellWriter[face.C0]; w >= 0 && s.marker[w] != e {
					s.marker[w] = e
					s.preds = append(s.preds, w)
				}
				if !face.IsBoundary() {
					if w := lastCellWriter[face.C1]; w >= 0 && s.marker[w] != e {
						s.marker[w] = e
						s.preds = append(s.preds, w)
					}
				}
				// Serialize with the previous writer of this face.
				if w := lastFaceWriter[f]; w >= 0 && s.marker[w] != e {
					s.marker[w] = e
					s.preds = append(s.preds, w)
				}
				lastFaceWriter[f] = id
			}
		} else {
			for _, c := range pt.objs {
				// Consume fluxes of every face of the cell.
				for _, f := range m.CellFaces(c) {
					if w := lastFaceWriter[f]; w >= 0 && s.marker[w] != e {
						s.marker[w] = e
						s.preds = append(s.preds, w)
					}
				}
				// Serialize with the previous update of this cell.
				if w := lastCellWriter[c]; w >= 0 && s.marker[w] != e {
					s.marker[w] = e
					s.preds = append(s.preds, w)
				}
				lastCellWriter[c] = id
			}
		}
		own := s.preds[base:]
		slices.Sort(own)
		s.counts = append(s.counts, int32(len(own)))
	}

	dspan := root.Start("taskgraph/discover")
	for iter := 0; iter < iterations; iter++ {
		for sub := 0; sub < nsub; sub++ {
			for _, tau := range levelsBySub[sub] {
				for _, kind := range kinds {
					groups := faceGroups
					unitCost := opt.FaceCost
					if kind == CellKind {
						groups = cellGroups
						unitCost = opt.CellCost
					}
					pending = pending[:0]
					for d := 0; d < numDomains; d++ {
						// External objects first: their results feed other
						// domains, so runtimes can overlap communication.
						if objs := groups.get(int32(d), tau, true); len(objs) > 0 {
							pending = append(pending, pendingTask{domain: int32(d), external: true, objs: objs})
						}
						if objs := groups.get(int32(d), tau, false); len(objs) > 0 {
							pending = append(pending, pendingTask{domain: int32(d), external: false, objs: objs})
						}
					}
					if len(pending) == 0 {
						continue
					}
					firstID := int32(len(tg.Tasks))
					bounds := pool.Bounds(len(pending), 1)
					nShards := len(bounds) - 1
					pool.RunN(nShards, func(si int) {
						s := scratches[si]
						s.preds = s.preds[:0]
						s.counts = s.counts[:0]
						for pi := bounds[si]; pi < bounds[si+1]; pi++ {
							discover(s, pi, firstID+int32(pi), kind)
						}
					})
					// Serial commit, in pending order: shard arenas are
					// appended back-to-back so the CSR matches the serial
					// build byte for byte.
					for si := 0; si < nShards; si++ {
						s := scratches[si]
						off := 0
						for pi := bounds[si]; pi < bounds[si+1]; pi++ {
							n := int(s.counts[pi-bounds[si]])
							preds = append(preds, s.preds[off:off+n]...)
							off += n
							predStart = append(predStart, int32(len(preds)))
							pt := &pending[pi]
							tg.Tasks = append(tg.Tasks, Task{
								ID: firstID + int32(pi), Iter: int32(iter), Sub: int32(sub),
								Tau: tau, Kind: kind, Domain: pt.domain,
								External: pt.external, NumObjects: int32(len(pt.objs)),
								Cost: int64(unitCost) * int64(len(pt.objs)),
							})
							if opt.RecordObjects {
								tg.Objects = append(tg.Objects, pt.objs)
							}
						}
					}
				}
			}
		}
	}
	dspan.End()
	tg.PredStart = predStart
	tg.Preds = preds
	if root.Active() {
		root.SetInt("tasks", int64(len(tg.Tasks)))
		root.SetInt("deps", int64(len(tg.Preds)))
	}
	root.End()
	return tg, nil
}

// objectGroups buckets object ids by (domain, level, external) in CSR form:
// bucket i holds ids[start[i]:start[i+1]], indexed by
// (domain*numLevels+level)*2 + ext. Ids within a bucket stay ascending.
type objectGroups struct {
	numLevels int
	start     []int32
	ids       []int32
}

func (og *objectGroups) bucket(domain, level int, external bool) int {
	i := (domain*og.numLevels + level) * 2
	if external {
		i++
	}
	return i
}

func (og *objectGroups) get(domain int32, level temporal.Level, external bool) []int32 {
	i := og.bucket(int(domain), int(level), external)
	return og.ids[og.start[i]:og.start[i+1]]
}

// countNonEmpty returns how many (domain, ext) buckets of the level hold at
// least one object.
func (og *objectGroups) countNonEmpty(numDomains, level int) int {
	n := 0
	for d := 0; d < numDomains; d++ {
		for _, ext := range [2]bool{true, false} {
			i := og.bucket(d, level, ext)
			if og.start[i+1] > og.start[i] {
				n++
			}
		}
	}
	return n
}

func groupObjects(n, numDomains, numLevels int, classify func(int32) (int32, temporal.Level, bool)) *objectGroups {
	nb := numDomains * numLevels * 2
	og := &objectGroups{
		numLevels: numLevels,
		start:     make([]int32, nb+1),
		ids:       make([]int32, n),
	}
	idx := make([]int32, n)
	for i := int32(0); i < int32(n); i++ {
		d, l, ext := classify(i)
		j := og.bucket(int(d), int(l), ext)
		idx[i] = int32(j)
		og.start[j+1]++
	}
	for j := 0; j < nb; j++ {
		og.start[j+1] += og.start[j]
	}
	cursor := make([]int32, nb)
	copy(cursor, og.start[:nb])
	for i := int32(0); i < int32(n); i++ {
		j := idx[i]
		og.ids[cursor[j]] = i
		cursor[j]++
	}
	return og
}
