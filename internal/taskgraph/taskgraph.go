// Package taskgraph implements the paper's Algorithm 1: generating the task
// DAG of one solver iteration from a mesh, its temporal levels, and a domain
// decomposition.
//
// One iteration is divided into 2^τmax subiterations. Each subiteration
// contains one phase per active temporal level, traversed in descending
// order. A phase dedicated to level τ processes, for every domain, first the
// faces of level τ and then the cells of level τ, each split into one task
// for *external* objects (those bordering another domain — the tasks whose
// results must be communicated) and one for *internal* objects. Empty tasks
// are not generated, which is exactly why partitioning controls the task
// graph's shape: a domain with no cells of level τ injects nothing into
// phase τ (paper Fig. 8).
//
// Dependencies follow the data flow of the explicit scheme:
//   - a face task reads its adjacent cells → depends on the latest tasks
//     that wrote those cells (possibly in an earlier phase of the same
//     subiteration, since coarser levels update first, or in an earlier
//     subiteration);
//   - a cell task consumes its faces' fluxes → depends on the latest tasks
//     that wrote those faces;
//   - successive updates of the same object serialize (write-after-write).
//
// Cross-domain dependencies (a task of domain A depending on a task of
// domain B) are the communications; internal/external task splitting lets a
// runtime overlap them.
package taskgraph

import (
	"fmt"
	"sort"

	"tempart/internal/mesh"
	"tempart/internal/temporal"
)

// Kind distinguishes face-processing tasks from cell-processing tasks.
type Kind uint8

const (
	// FaceKind tasks compute fluxes across faces.
	FaceKind Kind = iota
	// CellKind tasks update cell values from accumulated fluxes.
	CellKind
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k == FaceKind {
		return "faces"
	}
	return "cells"
}

// Task is one node of the DAG.
type Task struct {
	// ID is the task's index in TaskGraph.Tasks; predecessors always have
	// smaller IDs (construction order is a topological order).
	ID int32
	// Iter is the iteration the task belongs to (0 for single-iteration
	// graphs).
	Iter int32
	// Sub is the subiteration within the iteration, in [0, 2^τmax).
	Sub int32
	// Tau is the phase's temporal level.
	Tau temporal.Level
	// Kind is faces or cells.
	Kind Kind
	// Domain is the extraction domain.
	Domain int32
	// External marks tasks over objects bordering another domain.
	External bool
	// NumObjects is how many faces/cells the task processes.
	NumObjects int32
	// Cost is the task's work in abstract units.
	Cost int64
}

// TaskGraph is the DAG of one iteration.
type TaskGraph struct {
	Tasks []Task
	// PredStart/Preds form a CSR list of each task's dependencies.
	PredStart []int32
	Preds     []int32
	// SuccStart/Succs is the transposed CSR (built on demand).
	SuccStart []int32
	Succs     []int32

	// Objects[t] lists the face/cell ids task t processes; populated only
	// when Options.RecordObjects is set.
	Objects [][]int32

	NumDomains int
	Scheme     temporal.Scheme
}

// Options tunes task generation.
type Options struct {
	// FaceCost and CellCost are the work units per processed face/cell.
	// Zero values default to 1.
	FaceCost, CellCost int32
	// RecordObjects stores each task's object-id list in TaskGraph.Objects
	// so an executor can run real kernels over them. Lists alias shared
	// group storage and must be treated as read-only.
	RecordObjects bool
}

func (o Options) withDefaults() Options {
	if o.FaceCost == 0 {
		o.FaceCost = 1
	}
	if o.CellCost == 0 {
		o.CellCost = 1
	}
	return o
}

// NumTasks returns the task count.
func (tg *TaskGraph) NumTasks() int { return len(tg.Tasks) }

// NumDeps returns the dependency-edge count.
func (tg *TaskGraph) NumDeps() int { return len(tg.Preds) }

// PredsOf returns the dependency list of task t (aliases internal storage).
func (tg *TaskGraph) PredsOf(t int32) []int32 { return tg.Preds[tg.PredStart[t]:tg.PredStart[t+1]] }

// SuccsOf returns the successor list of task t, building the transpose on
// first use.
func (tg *TaskGraph) SuccsOf(t int32) []int32 {
	if tg.SuccStart == nil {
		tg.buildSuccs()
	}
	return tg.Succs[tg.SuccStart[t]:tg.SuccStart[t+1]]
}

func (tg *TaskGraph) buildSuccs() {
	n := len(tg.Tasks)
	deg := make([]int32, n+1)
	for _, p := range tg.Preds {
		deg[p+1]++
	}
	for i := 0; i < n; i++ {
		deg[i+1] += deg[i]
	}
	succs := make([]int32, len(tg.Preds))
	fill := make([]int32, n)
	copy(fill, deg[:n])
	for t := 0; t < n; t++ {
		for _, p := range tg.PredsOf(int32(t)) {
			succs[fill[p]] = int32(t)
			fill[p]++
		}
	}
	tg.SuccStart, tg.Succs = deg, succs
}

// TotalWork returns the summed cost of all tasks.
func (tg *TaskGraph) TotalWork() int64 {
	var w int64
	for i := range tg.Tasks {
		w += tg.Tasks[i].Cost
	}
	return w
}

// CriticalPath returns the longest cost-weighted path through the DAG — the
// absolute lower bound on any schedule's makespan regardless of core count.
func (tg *TaskGraph) CriticalPath() int64 {
	finish := make([]int64, len(tg.Tasks))
	var cp int64
	for t := range tg.Tasks {
		var start int64
		for _, p := range tg.PredsOf(int32(t)) {
			if finish[p] > start {
				start = finish[p]
			}
		}
		finish[t] = start + tg.Tasks[t].Cost
		if finish[t] > cp {
			cp = finish[t]
		}
	}
	return cp
}

// Validate checks DAG invariants: topological IDs, in-range domains and
// subiterations, sorted unique preds, positive costs for non-empty tasks.
func (tg *TaskGraph) Validate() error {
	nsub := int32(tg.Scheme.NumSubiterations())
	for i := range tg.Tasks {
		t := &tg.Tasks[i]
		if t.ID != int32(i) {
			return fmt.Errorf("taskgraph: task %d has ID %d", i, t.ID)
		}
		if t.Sub < 0 || t.Sub >= nsub {
			return fmt.Errorf("taskgraph: task %d subiteration %d out of range", i, t.Sub)
		}
		if t.Domain < 0 || int(t.Domain) >= tg.NumDomains {
			return fmt.Errorf("taskgraph: task %d domain %d out of range", i, t.Domain)
		}
		if t.NumObjects <= 0 {
			return fmt.Errorf("taskgraph: task %d is empty", i)
		}
		if t.Cost <= 0 {
			return fmt.Errorf("taskgraph: task %d has cost %d", i, t.Cost)
		}
		preds := tg.PredsOf(int32(i))
		for j, p := range preds {
			if p >= int32(i) {
				return fmt.Errorf("taskgraph: task %d depends on later task %d", i, p)
			}
			if j > 0 && preds[j-1] >= p {
				return fmt.Errorf("taskgraph: task %d preds not sorted-unique", i)
			}
		}
	}
	return nil
}

// faceLevel is the temporal level of a face: the finer (minimum) level of
// its adjacent cells, or the cell's own level for boundary faces.
func faceLevel(m *mesh.Mesh, f mesh.Face) temporal.Level {
	l := m.Level[f.C0]
	if !f.IsBoundary() && m.Level[f.C1] < l {
		l = m.Level[f.C1]
	}
	return l
}

// Build generates the task graph of one iteration for the given domain
// decomposition (part[cell] ∈ [0, numDomains)).
func Build(m *mesh.Mesh, part []int32, numDomains int, opt Options) (*TaskGraph, error) {
	return BuildIterations(m, part, numDomains, 1, opt)
}

// BuildIterations chains several iterations into one DAG without a global
// barrier between them: the first tasks of iteration i+1 depend only on the
// tasks of iteration i that last wrote the objects they touch, so a process
// that finishes its share of an iteration early can start the next one —
// cross-iteration pipelining, which is how the task-based FLUSEPA overlaps
// iterations in production.
func BuildIterations(m *mesh.Mesh, part []int32, numDomains, iterations int, opt Options) (*TaskGraph, error) {
	if len(part) != m.NumCells() {
		return nil, fmt.Errorf("taskgraph: %d domain assignments for %d cells", len(part), m.NumCells())
	}
	if iterations < 1 {
		return nil, fmt.Errorf("taskgraph: iterations = %d, want >= 1", iterations)
	}
	opt = opt.withDefaults()
	scheme := m.Scheme()
	tg := &TaskGraph{NumDomains: numDomains, Scheme: scheme}

	// Classify cells: external iff some face-neighbour is in another domain.
	nc := m.NumCells()
	cellExternal := make([]bool, nc)
	for _, f := range m.Faces[:m.NumInteriorFaces] {
		if part[f.C0] != part[f.C1] {
			cellExternal[f.C0] = true
			cellExternal[f.C1] = true
		}
	}
	// Face ownership and externality: interior cut faces belong to C0's
	// domain and are external; same-domain and boundary faces are internal.
	nf := m.NumFaces()
	faceDomain := make([]int32, nf)
	faceExternal := make([]bool, nf)
	for i, f := range m.Faces {
		faceDomain[i] = part[f.C0]
		if !f.IsBoundary() && part[f.C0] != part[f.C1] {
			faceExternal[i] = true
		}
	}

	// Group objects by (domain, level, external) once; reused every
	// activation of that level.
	cellGroups := groupObjects(nc, numDomains, scheme.NumLevels(),
		func(i int32) (int32, temporal.Level, bool) { return part[i], m.Level[i], cellExternal[i] })
	faceGroups := groupObjects(int(nf), numDomains, scheme.NumLevels(),
		func(i int32) (int32, temporal.Level, bool) {
			return faceDomain[i], faceLevel(m, m.Faces[i]), faceExternal[i]
		})

	// Last-writer tracking for dependency discovery.
	lastCellWriter := make([]int32, nc)
	lastFaceWriter := make([]int32, nf)
	for i := range lastCellWriter {
		lastCellWriter[i] = -1
	}
	for i := range lastFaceWriter {
		lastFaceWriter[i] = -1
	}

	var preds []int32
	predStart := []int32{0}
	predSet := map[int32]struct{}{}

	addTask := func(iter, sub int32, tau temporal.Level, kind Kind, domain int32, external bool, objects []int32) {
		id := int32(len(tg.Tasks))
		clear(predSet)
		var unitCost int32
		if kind == FaceKind {
			unitCost = opt.FaceCost
			for _, f := range objects {
				face := m.Faces[f]
				// Read adjacent cells.
				if w := lastCellWriter[face.C0]; w >= 0 {
					predSet[w] = struct{}{}
				}
				if !face.IsBoundary() {
					if w := lastCellWriter[face.C1]; w >= 0 {
						predSet[w] = struct{}{}
					}
				}
				// Serialize with the previous writer of this face.
				if w := lastFaceWriter[f]; w >= 0 {
					predSet[w] = struct{}{}
				}
				lastFaceWriter[f] = id
			}
		} else {
			unitCost = opt.CellCost
			for _, c := range objects {
				// Consume fluxes of every face of the cell.
				for _, f := range m.CellFaces(c) {
					if w := lastFaceWriter[f]; w >= 0 {
						predSet[w] = struct{}{}
					}
				}
				// Serialize with the previous update of this cell.
				if w := lastCellWriter[c]; w >= 0 {
					predSet[w] = struct{}{}
				}
				lastCellWriter[c] = id
			}
		}
		delete(predSet, id) // intra-task references are not dependencies
		start := predStart[len(predStart)-1]
		for p := range predSet {
			preds = append(preds, p)
		}
		own := preds[start:]
		sort.Slice(own, func(a, b int) bool { return own[a] < own[b] })
		predStart = append(predStart, int32(len(preds)))

		tg.Tasks = append(tg.Tasks, Task{
			ID: id, Iter: iter, Sub: sub, Tau: tau, Kind: kind, Domain: domain,
			External: external, NumObjects: int32(len(objects)),
			Cost: int64(unitCost) * int64(len(objects)),
		})
		if opt.RecordObjects {
			tg.Objects = append(tg.Objects, objects)
		}
	}

	nsub := scheme.NumSubiterations()
	for iter := 0; iter < iterations; iter++ {
		for sub := 0; sub < nsub; sub++ {
			for _, tau := range scheme.ActiveLevels(sub) {
				for _, kind := range []Kind{FaceKind, CellKind} {
					groups := faceGroups
					if kind == CellKind {
						groups = cellGroups
					}
					for d := 0; d < numDomains; d++ {
						// External objects first: their results feed other
						// domains, so runtimes can overlap communication.
						if objs := groups.get(int32(d), tau, true); len(objs) > 0 {
							addTask(int32(iter), int32(sub), tau, kind, int32(d), true, objs)
						}
						if objs := groups.get(int32(d), tau, false); len(objs) > 0 {
							addTask(int32(iter), int32(sub), tau, kind, int32(d), false, objs)
						}
					}
				}
			}
		}
	}
	tg.PredStart = predStart
	tg.Preds = preds
	return tg, nil
}

// objectGroups buckets object ids by (domain, level, external).
type objectGroups struct {
	numLevels int
	buckets   [][]int32 // index: (domain*numLevels+level)*2 + ext
}

func (og *objectGroups) get(domain int32, level temporal.Level, external bool) []int32 {
	i := (int(domain)*og.numLevels + int(level)) * 2
	if external {
		i++
	}
	return og.buckets[i]
}

func groupObjects(n, numDomains, numLevels int, classify func(int32) (int32, temporal.Level, bool)) *objectGroups {
	og := &objectGroups{numLevels: numLevels, buckets: make([][]int32, numDomains*numLevels*2)}
	for i := int32(0); i < int32(n); i++ {
		d, l, ext := classify(i)
		idx := (int(d)*numLevels + int(l)) * 2
		if ext {
			idx++
		}
		og.buckets[idx] = append(og.buckets[idx], i)
	}
	return og
}
