// Package eval is the evaluation facade: it turns (mesh, partition,
// cluster, strategy) tuples into makespans and the associated quality
// metrics, caching built task graphs and pooling simulators so sweeps over
// strategy/cluster variants pay the graph-construction cost once.
//
// Every quality decision in the repo — partbench strategy tables, tuner
// trials, repartitioning studies, tempartd responses — funnels through
// taskgraph.Build + flusim.Simulate; this package is their shared front
// door. Graphs are cached under a content hash of (mesh identity, temporal
// levels, partition, domain count, iterations, costs), so a repartition
// request that keeps its parent's partition, or a strategy sweep over one
// decomposition, reuses the graph instead of rebuilding it. Simulations of
// independent specs fan out across a bounded graph.Pool.
package eval

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"tempart/internal/flusim"
	"tempart/internal/graph"
	"tempart/internal/mesh"
	"tempart/internal/metrics"
	"tempart/internal/obs"
	"tempart/internal/taskgraph"
	"tempart/internal/trace"
)

// Options configures an Evaluator.
type Options struct {
	// Parallelism bounds workers for both graph construction and the
	// EvaluateAll fan-out: 0 (or negative) means one per core, 1 serial.
	Parallelism int
	// GraphCacheSize is the maximum number of task graphs kept (LRU).
	// 0 means DefaultGraphCacheSize; negative disables caching.
	GraphCacheSize int
}

// DefaultGraphCacheSize is the graph-cache capacity when Options leaves it 0.
const DefaultGraphCacheSize = 8

// Spec is one evaluation request.
type Spec struct {
	// Mesh and Part define the decomposition the task graph is built from.
	Mesh *mesh.Mesh
	// MeshID is an optional stable identity for the mesh contents. When
	// set, cache keys survive re-resolving the same mesh into a different
	// allocation (e.g. one tempartd request to the next); when empty the
	// graph cache is keyed per call only through the level/part content,
	// so distinct meshes MUST set it or differ in those. Callers that
	// mutate a mesh's Level slice in place (ReassignLevels) are safe either
	// way: levels are hashed into the key.
	MeshID     string
	Part       []int32
	NumDomains int
	// Iterations chains several solver iterations into the DAG (0 → 1).
	Iterations int
	// FaceCost/CellCost are per-object work units (0 → 1), as in
	// taskgraph.Options.
	FaceCost, CellCost int32
	// ProcOf maps each domain to its process.
	ProcOf []int32
	// Sim is the cluster/strategy configuration for the simulation.
	Sim flusim.Config
	// Obs, when non-nil, records build/simulate spans and graph-cache
	// hit/miss counters ("eval.graph_cache_hit"/"eval.graph_cache_miss").
	// Excluded from the graph cache key, so traced and untraced requests for
	// the same workload share cached graphs. Nil costs nothing.
	Obs *obs.Recorder
}

// Outcome is the result of one evaluation.
type Outcome struct {
	Makespan     int64
	CriticalPath int64
	TotalWork    int64
	CommVolume   int64
	// Efficiency is TotalWork / (Makespan × procs × workers); zero when the
	// cluster is unbounded.
	Efficiency float64
	NumTasks   int
	NumDeps    int
	// BuildSeconds is the graph-construction time; zero when GraphCached.
	BuildSeconds    float64
	SimulateSeconds float64
	// GraphCached reports whether the task graph came from the cache.
	GraphCached bool
	// Trace is set when Spec.Sim.RecordTrace was set.
	Trace *trace.Trace
	// BusyPerProc is each process's total computation time.
	BusyPerProc []int64
}

// Evaluator caches task graphs and pools simulators. Safe for concurrent
// use.
type Evaluator struct {
	pool      *graph.Pool
	cacheSize int

	mu    sync.Mutex
	cache map[[32]byte]*cacheEntry
	seq   int64

	sims sync.Pool
}

type cacheEntry struct {
	tg       *taskgraph.TaskGraph
	lastUsed int64
}

// New builds an Evaluator.
func New(opt Options) *Evaluator {
	size := opt.GraphCacheSize
	if size == 0 {
		size = DefaultGraphCacheSize
	}
	if size < 0 {
		size = 0
	}
	return &Evaluator{
		pool:      graph.NewPool(opt.Parallelism),
		cacheSize: size,
		cache:     make(map[[32]byte]*cacheEntry),
		sims:      sync.Pool{New: func() any { return flusim.NewSimulator() }},
	}
}

// graphKey hashes everything the built DAG depends on. Levels are hashed by
// content because ReassignLevels mutates them in place between epochs.
func graphKey(spec *Spec) [32]byte {
	h := sha256.New()
	var buf [8]byte
	writeInt := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	if spec.MeshID != "" {
		h.Write([]byte(spec.MeshID))
	} else {
		// Pointer identity: callers without a stable content id get cache
		// hits only while reusing the same mesh allocation, which is the
		// tuner/partbench pattern.
		fmt.Fprintf(h, "ptr:%p:%s", spec.Mesh, spec.Mesh.Name)
	}
	writeInt(int64(len(spec.Mesh.Level)))
	writeInt(int64(spec.Mesh.NumInteriorFaces))
	chunk := make([]byte, 0, 4096)
	for _, l := range spec.Mesh.Level {
		chunk = append(chunk, byte(l))
		if len(chunk) == cap(chunk) {
			h.Write(chunk)
			chunk = chunk[:0]
		}
	}
	h.Write(chunk)
	chunk = chunk[:0]
	for _, p := range spec.Part {
		var b4 [4]byte
		binary.LittleEndian.PutUint32(b4[:], uint32(p))
		chunk = append(chunk, b4[:]...)
		if len(chunk) >= cap(chunk)-4 {
			h.Write(chunk)
			chunk = chunk[:0]
		}
	}
	h.Write(chunk)
	writeInt(int64(spec.NumDomains))
	writeInt(int64(spec.iterations()))
	writeInt(int64(spec.FaceCost))
	writeInt(int64(spec.CellCost))
	var key [32]byte
	h.Sum(key[:0])
	return key
}

func (spec *Spec) iterations() int {
	if spec.Iterations < 1 {
		return 1
	}
	return spec.Iterations
}

func (spec *Spec) tgOptions(parallelism int) taskgraph.Options {
	return taskgraph.Options{
		FaceCost:    spec.FaceCost,
		CellCost:    spec.CellCost,
		Parallelism: parallelism,
		Obs:         spec.Obs,
	}
}

// graphFor returns the task graph for the spec, building (and caching) it
// when absent. Specs without a MeshID are cached too — the level and part
// content is part of the key, which in practice distinguishes decompositions
// of different meshes; callers needing strict isolation set distinct
// MeshIDs.
func (e *Evaluator) graphFor(spec *Spec) (tg *taskgraph.TaskGraph, cached bool, buildSeconds float64, err error) {
	var key [32]byte
	if e.cacheSize > 0 {
		key = graphKey(spec)
		e.mu.Lock()
		if ent, ok := e.cache[key]; ok {
			e.seq++
			ent.lastUsed = e.seq
			e.mu.Unlock()
			spec.Obs.Count("eval.graph_cache_hit", 1)
			return ent.tg, true, 0, nil
		}
		e.mu.Unlock()
	}
	spec.Obs.Count("eval.graph_cache_miss", 1)
	t0 := time.Now()
	tg, err = taskgraph.BuildIterations(spec.Mesh, spec.Part, spec.NumDomains,
		spec.iterations(), spec.tgOptions(e.pool.Width()))
	if err != nil {
		return nil, false, 0, err
	}
	buildSeconds = time.Since(t0).Seconds()
	// Freeze the lazily derived state now so concurrent simulations share
	// the graph without contending on first use.
	tg.CriticalPath()
	if e.cacheSize > 0 {
		e.mu.Lock()
		e.seq++
		if ent, ok := e.cache[key]; ok {
			// Another goroutine built it concurrently; keep theirs.
			ent.lastUsed = e.seq
			tg = ent.tg
			cached = true
		} else {
			e.cache[key] = &cacheEntry{tg: tg, lastUsed: e.seq}
			for len(e.cache) > e.cacheSize {
				var oldestKey [32]byte
				oldest := int64(1<<63 - 1)
				for k, ent := range e.cache {
					if ent.lastUsed < oldest {
						oldest, oldestKey = ent.lastUsed, k
					}
				}
				delete(e.cache, oldestKey)
			}
		}
		e.mu.Unlock()
	}
	return tg, cached, buildSeconds, nil
}

// Evaluate scores one spec.
func (e *Evaluator) Evaluate(spec Spec) (*Outcome, error) {
	tg, cached, buildSeconds, err := e.graphFor(&spec)
	if err != nil {
		return nil, err
	}
	out, err := e.simulate(tg, &spec)
	if err != nil {
		return nil, err
	}
	out.GraphCached = cached
	out.BuildSeconds = buildSeconds
	return out, nil
}

func (e *Evaluator) simulate(tg *taskgraph.TaskGraph, spec *Spec) (*Outcome, error) {
	sim := e.sims.Get().(*flusim.Simulator)
	defer e.sims.Put(sim)
	span := spec.Obs.Start("eval/simulate")
	t0 := time.Now()
	res, err := sim.Simulate(tg, spec.ProcOf, spec.Sim)
	if err != nil {
		span.End()
		return nil, err
	}
	simSeconds := time.Since(t0).Seconds()
	if span.Active() {
		span.SetInt("tasks", int64(tg.NumTasks()))
		span.SetInt("makespan", res.Makespan)
		span.SetStr("scheduler", spec.Sim.Strategy.String())
	}
	span.End()
	out := &Outcome{
		Makespan:        res.Makespan,
		CriticalPath:    res.CriticalPath,
		TotalWork:       res.TotalWork,
		CommVolume:      metrics.CommVolume(tg, spec.ProcOf),
		NumTasks:        tg.NumTasks(),
		NumDeps:         tg.NumDeps(),
		SimulateSeconds: simSeconds,
		Trace:           res.Trace,
		BusyPerProc:     res.BusyPerProc,
	}
	if w := spec.Sim.Cluster.WorkersPerProc; w > 0 && res.Makespan > 0 {
		cores := int64(spec.Sim.Cluster.NumProcs) * int64(w)
		out.Efficiency = float64(res.TotalWork) / (float64(res.Makespan) * float64(cores))
	}
	return out, nil
}

// EvaluateAll scores many specs, building each distinct graph once and
// fanning the simulations across the evaluator's pool. Outcomes align with
// specs; on error the corresponding outcome is nil and the joined error is
// returned (outcomes of other specs remain valid).
func (e *Evaluator) EvaluateAll(specs []Spec) ([]*Outcome, error) {
	outs := make([]*Outcome, len(specs))
	errs := make([]error, len(specs))
	graphs := make([]*taskgraph.TaskGraph, len(specs))
	cachedFlags := make([]bool, len(specs))
	buildTimes := make([]float64, len(specs))
	for i := range specs {
		graphs[i], cachedFlags[i], buildTimes[i], errs[i] = e.graphFor(&specs[i])
	}
	e.pool.RunN(len(specs), func(i int) {
		if errs[i] != nil {
			return
		}
		out, err := e.simulate(graphs[i], &specs[i])
		if err != nil {
			errs[i] = err
			return
		}
		out.GraphCached = cachedFlags[i]
		out.BuildSeconds = buildTimes[i]
		outs[i] = out
	})
	return outs, errors.Join(errs...)
}

// CacheLen reports how many task graphs are currently cached.
func (e *Evaluator) CacheLen() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.cache)
}
