package eval

import (
	"context"
	"testing"

	"tempart/internal/flusim"
	"tempart/internal/mesh"
	"tempart/internal/metrics"
	"tempart/internal/partition"
	"tempart/internal/taskgraph"
)

func testSpec(t *testing.T) (Spec, *mesh.Mesh, []int32) {
	t.Helper()
	m := mesh.Cylinder(0.002)
	res, err := partition.PartitionMesh(context.Background(), m, 16, partition.MCTL,
		partition.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{
		Mesh: m, Part: res.Part, NumDomains: 16,
		ProcOf: flusim.BlockMap(16, 4),
		Sim:    flusim.Config{Cluster: flusim.Cluster{NumProcs: 4, WorkersPerProc: 4}},
	}
	return spec, m, res.Part
}

// TestEvaluateMatchesDirectPipeline pins the facade against the underlying
// Build+Simulate pipeline on every reported number.
func TestEvaluateMatchesDirectPipeline(t *testing.T) {
	spec, m, part := testSpec(t)
	e := New(Options{Parallelism: 1})
	out, err := e.Evaluate(spec)
	if err != nil {
		t.Fatal(err)
	}
	tg, err := taskgraph.Build(m, part, 16, taskgraph.Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := flusim.Simulate(tg, spec.ProcOf, spec.Sim)
	if err != nil {
		t.Fatal(err)
	}
	if out.Makespan != res.Makespan {
		t.Errorf("makespan %d, direct pipeline %d", out.Makespan, res.Makespan)
	}
	if out.CriticalPath != res.CriticalPath || out.TotalWork != res.TotalWork {
		t.Errorf("bounds (%d, %d), direct (%d, %d)",
			out.CriticalPath, out.TotalWork, res.CriticalPath, res.TotalWork)
	}
	if want := metrics.CommVolume(tg, spec.ProcOf); out.CommVolume != want {
		t.Errorf("comm volume %d, want %d", out.CommVolume, want)
	}
	if out.NumTasks != tg.NumTasks() || out.NumDeps != tg.NumDeps() {
		t.Errorf("size (%d, %d), want (%d, %d)", out.NumTasks, out.NumDeps, tg.NumTasks(), tg.NumDeps())
	}
	if out.GraphCached {
		t.Error("first evaluation reported a cached graph")
	}
	if out.BuildSeconds <= 0 {
		t.Error("first evaluation reported no build time")
	}
	wantEff := float64(res.TotalWork) / (float64(res.Makespan) * 16)
	if out.Efficiency != wantEff {
		t.Errorf("efficiency %g, want %g", out.Efficiency, wantEff)
	}
}

// TestGraphCacheHit asserts the second evaluation of the same decomposition
// reuses the cached graph, and that changing the partition or the levels
// misses.
func TestGraphCacheHit(t *testing.T) {
	spec, m, part := testSpec(t)
	e := New(Options{Parallelism: 1})
	if _, err := e.Evaluate(spec); err != nil {
		t.Fatal(err)
	}
	out, err := e.Evaluate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !out.GraphCached {
		t.Error("second evaluation rebuilt the graph")
	}
	if out.BuildSeconds != 0 {
		t.Error("cached evaluation reported build time")
	}

	// Different strategy, same graph.
	spec2 := spec
	spec2.Sim.Strategy = flusim.LIFO
	out2, err := e.Evaluate(spec2)
	if err != nil {
		t.Fatal(err)
	}
	if !out2.GraphCached {
		t.Error("strategy variant rebuilt the graph")
	}

	// Different partition: miss.
	part2 := append([]int32(nil), part...)
	part2[0] = (part2[0] + 1) % 16
	spec3 := spec
	spec3.Part = part2
	out3, err := e.Evaluate(spec3)
	if err != nil {
		t.Fatal(err)
	}
	if out3.GraphCached {
		t.Error("changed partition hit the cache")
	}

	// In-place level mutation (the ReassignLevels pattern): miss.
	counts := m.Census()
	m.ReassignLevels(func(x, y, z float64) float64 { return x + y + z }, counts)
	out4, err := e.Evaluate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if out4.GraphCached {
		t.Error("mutated levels hit the cache")
	}
}

// TestEvaluateAll checks the fan-out path returns the same outcomes as
// serial Evaluate calls, builds the shared graph once, and works at
// parallelism > 1.
func TestEvaluateAll(t *testing.T) {
	spec, _, _ := testSpec(t)
	strategies := []flusim.Strategy{flusim.Eager, flusim.LIFO, flusim.CriticalPathFirst, flusim.RandomOrder}

	serial := New(Options{Parallelism: 1})
	want := make([]*Outcome, len(strategies))
	for i, s := range strategies {
		sp := spec
		sp.Sim.Strategy = s
		sp.Sim.Seed = 11
		out, err := serial.Evaluate(sp)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = out
	}

	for _, par := range []int{1, 4} {
		e := New(Options{Parallelism: par})
		specs := make([]Spec, len(strategies))
		for i, s := range strategies {
			specs[i] = spec
			specs[i].Sim.Strategy = s
			specs[i].Sim.Seed = 11
		}
		outs, err := e.EvaluateAll(specs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range outs {
			if outs[i].Makespan != want[i].Makespan {
				t.Errorf("parallelism %d, strategy %v: makespan %d, want %d",
					par, strategies[i], outs[i].Makespan, want[i].Makespan)
			}
			if outs[i].CommVolume != want[i].CommVolume {
				t.Errorf("parallelism %d, strategy %v: comm %d, want %d",
					par, strategies[i], outs[i].CommVolume, want[i].CommVolume)
			}
		}
		// One graph, shared: only the first spec may have built it.
		built := 0
		for _, out := range outs {
			if !out.GraphCached {
				built++
			}
		}
		if built != 1 {
			t.Errorf("parallelism %d: %d graph builds for one decomposition, want 1", par, built)
		}
		if got := e.CacheLen(); got != 1 {
			t.Errorf("parallelism %d: cache holds %d graphs, want 1", par, got)
		}
	}
}

// TestCacheEviction bounds the cache at its configured size.
func TestCacheEviction(t *testing.T) {
	spec, _, part := testSpec(t)
	e := New(Options{Parallelism: 1, GraphCacheSize: 2})
	for i := 0; i < 4; i++ {
		p := append([]int32(nil), part...)
		p[0] = int32(i % 16)
		sp := spec
		sp.Part = p
		if _, err := e.Evaluate(sp); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.CacheLen(); got > 2 {
		t.Errorf("cache holds %d graphs, capacity 2", got)
	}

	disabled := New(Options{Parallelism: 1, GraphCacheSize: -1})
	if _, err := disabled.Evaluate(spec); err != nil {
		t.Fatal(err)
	}
	if got := disabled.CacheLen(); got != 0 {
		t.Errorf("disabled cache holds %d graphs", got)
	}
}

// TestMeshIDKeying: the same content under the same MeshID hits across
// distinct mesh allocations — the tempartd pattern, where every request
// re-resolves its mesh.
func TestMeshIDKeying(t *testing.T) {
	m1 := mesh.Cylinder(0.002)
	m2 := mesh.Cylinder(0.002)
	part := make([]int32, m1.NumCells())
	for i := range part {
		part[i] = int32(i % 8)
	}
	e := New(Options{Parallelism: 1})
	mk := func(m *mesh.Mesh) Spec {
		return Spec{
			Mesh: m, MeshID: "gen:CYLINDER:0.002", Part: part, NumDomains: 8,
			ProcOf: flusim.BlockMap(8, 2),
			Sim:    flusim.Config{Cluster: flusim.Cluster{NumProcs: 2, WorkersPerProc: 2}},
		}
	}
	if _, err := e.Evaluate(mk(m1)); err != nil {
		t.Fatal(err)
	}
	out, err := e.Evaluate(mk(m2))
	if err != nil {
		t.Fatal(err)
	}
	if !out.GraphCached {
		t.Error("same MeshID + content across allocations missed the cache")
	}
}
