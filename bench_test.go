// Benchmarks regenerating every table and figure of the paper's evaluation,
// plus component micro-benchmarks. Each experiment benchmark reports the
// paper-relevant quantity (speedup ratio, gain %, variance) as a custom
// metric alongside the usual ns/op.
//
// Scale: benchmarks default to 1/100 of the paper's mesh sizes so the full
// suite finishes in minutes on one core; set TEMPART_SCALE (e.g. "1.0") to
// run at the published sizes. Shapes — who wins, by what factor, trends —
// are scale-stable; see EXPERIMENTS.md.
package tempart_test

import (
	"context"
	"os"
	"strconv"
	"testing"

	"tempart/internal/core"
	"tempart/internal/dist"
	"tempart/internal/experiments"
	"tempart/internal/flusim"
	"tempart/internal/fv"
	"tempart/internal/mesh"
	"tempart/internal/partition"
	"tempart/internal/solver"
	"tempart/internal/taskgraph"
	"tempart/internal/tuner"
)

// benchParams returns the experiment parameters honouring TEMPART_SCALE.
func benchParams() experiments.Params {
	p := experiments.Params{Scale: 0.01, Seed: 1, GanttWidth: 80}
	if s := os.Getenv("TEMPART_SCALE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			p.Scale = v
			p.CubeScale = 0 // re-derive from Scale
		}
	}
	return p
}

// BenchmarkTable1Meshes regenerates Table I (mesh censuses).
func BenchmarkTable1Meshes(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table1(p)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Meshes) != 3 {
			b.Fatal("missing meshes")
		}
	}
}

// BenchmarkFig5RuntimeVsFlusim regenerates Figure 5 (solver vs FLUSIM trace
// agreement) and reports the schedule-stretch variance.
func BenchmarkFig5RuntimeVsFlusim(b *testing.B) {
	p := benchParams()
	var variance float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5(p)
		if err != nil {
			b.Fatal(err)
		}
		variance = r.VariancePct
	}
	b.ReportMetric(variance, "variance_%")
}

// BenchmarkFig6UnboundedCores regenerates Figure 6 and reports the mean
// active share (1.0 would mean no structural idleness).
func BenchmarkFig6UnboundedCores(b *testing.B) {
	p := benchParams()
	var share float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6(p)
		if err != nil {
			b.Fatal(err)
		}
		share = r.MeanActiveShare
	}
	b.ReportMetric(share, "active_share")
}

// BenchmarkFig7SCOCCharacteristics regenerates Figure 7 and reports the
// worst per-level cost spread (skew) under SC_OC.
func BenchmarkFig7SCOCCharacteristics(b *testing.B) {
	p := benchParams()
	var worst float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig7(p)
		if err != nil {
			b.Fatal(err)
		}
		worst = worstSpread(r.LevelSpread)
	}
	b.ReportMetric(worst, "worst_level_spread")
}

// BenchmarkFig10MCTLCharacteristics regenerates Figure 10 (the MC_TL
// counterpart of Figure 7).
func BenchmarkFig10MCTLCharacteristics(b *testing.B) {
	p := benchParams()
	var worst float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig10(p)
		if err != nil {
			b.Fatal(err)
		}
		worst = worstSpread(r.LevelSpread)
	}
	b.ReportMetric(worst, "worst_level_spread")
}

func worstSpread(spread []float64) float64 {
	w := 0.0
	for _, s := range spread {
		if s > w {
			w = s
		}
	}
	return w
}

// BenchmarkFig8TaskGraphShape regenerates Figure 8's task-count contrast.
func BenchmarkFig8TaskGraphShape(b *testing.B) {
	var bal int
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8(experiments.Params{})
		if err != nil {
			b.Fatal(err)
		}
		bal = r.BalFirstPhase
	}
	b.ReportMetric(float64(bal), "balanced_first_phase_tasks")
}

// BenchmarkFig9Speedup regenerates Figure 9 and reports the CYLINDER and
// CUBE speedups of MC_TL over SC_OC at 128 domains (paper: ~2×).
func BenchmarkFig9Speedup(b *testing.B) {
	p := benchParams()
	var cyl, cube float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9(p)
		if err != nil {
			b.Fatal(err)
		}
		cyl, cube = r.Rows[0].Ratio, r.Rows[1].Ratio
	}
	b.ReportMetric(cyl, "cylinder_speedup")
	b.ReportMetric(cube, "cube_speedup")
}

// BenchmarkFig11Sweep regenerates Figure 11 (ratio and comm volume vs domain
// count) and reports the edge ratios of the sweep.
func BenchmarkFig11Sweep(b *testing.B) {
	p := benchParams()
	var first, last float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig11(p)
		if err != nil {
			b.Fatal(err)
		}
		first = r.Rows[0].SpeedupRatio
		last = r.Rows[len(r.Rows)-1].SpeedupRatio
	}
	b.ReportMetric(first, "ratio_fewest_domains")
	b.ReportMetric(last, "ratio_most_domains")
}

// BenchmarkFig12Nozzle regenerates Figure 12 and reports the FLUSIM gain of
// MC_TL on PPRIME_NOZZLE (paper: ~20%).
func BenchmarkFig12Nozzle(b *testing.B) {
	p := benchParams()
	var gain float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig12(p)
		if err != nil {
			b.Fatal(err)
		}
		gain = r.GainPct
	}
	b.ReportMetric(gain, "gain_%")
}

// BenchmarkFig13Production regenerates Figure 13 — the production-style
// validation with real kernels — and reports the gain (paper: ~20%).
func BenchmarkFig13Production(b *testing.B) {
	p := benchParams()
	var gain float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig13(p)
		if err != nil {
			b.Fatal(err)
		}
		gain = r.GainPct
	}
	b.ReportMetric(gain, "gain_%")
}

// ---- component micro-benchmarks ----

// BenchmarkPartitionSCOC measures single-constraint partitioning throughput.
func BenchmarkPartitionSCOC(b *testing.B) {
	m := mesh.Cylinder(benchParams().Scale)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := partition.PartitionMesh(context.Background(), m, 64, partition.SCOC, partition.Options{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(m.NumCells()), "cells")
}

// BenchmarkPartitionMCTL measures multi-constraint partitioning throughput.
func BenchmarkPartitionMCTL(b *testing.B) {
	m := mesh.Cylinder(benchParams().Scale)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := partition.PartitionMesh(context.Background(), m, 64, partition.MCTL, partition.Options{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(m.NumCells()), "cells")
}

// BenchmarkTaskGraphBuild measures Algorithm 1 generation.
func BenchmarkTaskGraphBuild(b *testing.B) {
	m := mesh.Cylinder(benchParams().Scale)
	r, err := partition.PartitionMesh(context.Background(), m, 64, partition.MCTL, partition.Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tg, err := taskgraph.Build(m, r.Part, 64, taskgraph.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(tg.NumTasks()), "tasks")
		}
	}
}

// BenchmarkFlusimSimulate measures discrete-event scheduling throughput.
func BenchmarkFlusimSimulate(b *testing.B) {
	m := mesh.Cylinder(benchParams().Scale)
	r, err := partition.PartitionMesh(context.Background(), m, 128, partition.MCTL, partition.Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	tg, err := taskgraph.Build(m, r.Part, 128, taskgraph.Options{})
	if err != nil {
		b.Fatal(err)
	}
	pm := flusim.BlockMap(128, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := flusim.Simulate(tg, pm, flusim.Config{
			Cluster: flusim.Cluster{NumProcs: 16, WorkersPerProc: 32},
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tg.NumTasks()), "tasks")
}

// BenchmarkFVIteration measures the finite-volume kernel throughput
// (cells·updates per op).
func BenchmarkFVIteration(b *testing.B) {
	m := mesh.Cylinder(benchParams().Scale)
	s := fv.NewState(m, fv.DefaultParams())
	s.InitGaussian(1, 0.5, 0.5, 0.3, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.RunIteration()
	}
	b.ReportMetric(float64(m.Scheme().IterationWork(m.Census())), "cell_updates")
}

// BenchmarkCompareEndToEnd measures the full core.Compare pipeline.
func BenchmarkCompareEndToEnd(b *testing.B) {
	m := mesh.Cube(0.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := core.Compare(context.Background(), m, core.CompareConfig{
			NumDomains: 32,
			Cluster:    core.Cluster{NumProcs: 8, WorkersPerProc: 4},
			Seed:       int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(rows[1].Speedup, "mctl_speedup")
		}
	}
}

// ---- ablation benchmarks: the design choices behind the headline result ----

// BenchmarkAblationRBvsKWay quantifies the paper's §V choice of recursive
// bisection over direct k-way for multi-constraint partitioning: it reports
// the worst per-level imbalance of each method (lower = better balance).
func BenchmarkAblationRBvsKWay(b *testing.B) {
	m := mesh.Cylinder(benchParams().Scale)
	g := m.DualGraph(mesh.DualGraphOptions{Constraints: mesh.PerLevel})
	var rbImb, kwImb float64
	for i := 0; i < b.N; i++ {
		rb, err := partition.Partition(context.Background(), g, 64, partition.Options{Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		kw, err := partition.Partition(context.Background(), g, 64, partition.Options{Seed: int64(i), Method: partition.DirectKWay})
		if err != nil {
			b.Fatal(err)
		}
		rbImb, kwImb = rb.MaxImbalance(), kw.MaxImbalance()
	}
	b.ReportMetric(rbImb, "rb_level_imbalance")
	b.ReportMetric(kwImb, "kway_level_imbalance")
}

// BenchmarkAblationSchedulers compares ready-queue policies on a bounded
// cluster under SC_OC — supporting the paper's §III-C claim that scheduling
// cannot fix the graph's shape (the spread across policies is small compared
// to the 2x partitioning gain).
func BenchmarkAblationSchedulers(b *testing.B) {
	m := mesh.Cylinder(benchParams().Scale)
	r, err := partition.PartitionMesh(context.Background(), m, 128, partition.SCOC, partition.Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	tg, err := taskgraph.Build(m, r.Part, 128, taskgraph.Options{})
	if err != nil {
		b.Fatal(err)
	}
	pm := flusim.BlockMap(128, 16)
	cluster := flusim.Cluster{NumProcs: 16, WorkersPerProc: 32}
	spans := map[string]int64{}
	for i := 0; i < b.N; i++ {
		for _, s := range []flusim.Strategy{flusim.Eager, flusim.LIFO, flusim.CriticalPathFirst, flusim.RandomOrder} {
			res, err := flusim.Simulate(tg, pm, flusim.Config{Cluster: cluster, Strategy: s, Seed: 3})
			if err != nil {
				b.Fatal(err)
			}
			spans[s.String()] = res.Makespan
		}
	}
	for name, span := range spans {
		b.ReportMetric(float64(span), name+"_makespan")
	}
}

// BenchmarkAblationDualPhase evaluates the paper's §VII perspective under a
// communication-aware simulation: flat MC_TL pays its full cut between
// processes, while dual-phase MC_TL→SC_OC keeps intra-process subdomain
// traffic free.
func BenchmarkAblationDualPhase(b *testing.B) {
	m := mesh.Cylinder(benchParams().Scale)
	const procs, perProc = 16, 8
	const domains = procs * perProc
	cluster := flusim.Cluster{NumProcs: procs, WorkersPerProc: 32}
	const latency = 200
	var flat, dual int64
	for i := 0; i < b.N; i++ {
		fr, err := partition.PartitionMesh(context.Background(), m, domains, partition.MCTL, partition.Options{Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		ftg, err := taskgraph.Build(m, fr.Part, domains, taskgraph.Options{})
		if err != nil {
			b.Fatal(err)
		}
		fres, err := flusim.Simulate(ftg, flusim.BlockMap(domains, procs), flusim.Config{Cluster: cluster, CommLatency: latency})
		if err != nil {
			b.Fatal(err)
		}
		flat = fres.Makespan

		dp, err := partition.DualPhase(context.Background(), m, procs, perProc, partition.Options{Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		dtg, err := taskgraph.Build(m, dp.Domain, domains, taskgraph.Options{})
		if err != nil {
			b.Fatal(err)
		}
		dres, err := flusim.Simulate(dtg, dp.ProcOfDomain, flusim.Config{Cluster: cluster, CommLatency: latency})
		if err != nil {
			b.Fatal(err)
		}
		dual = dres.Makespan
	}
	b.ReportMetric(float64(flat), "flat_mctl_makespan")
	b.ReportMetric(float64(dual), "dualphase_makespan")
}

// BenchmarkAblationIterationPipelining compares N barrier-separated
// iterations against one chained N-iteration DAG: chaining lets idle tails
// overlap the next iteration's head, which softens SC_OC's imbalance.
func BenchmarkAblationIterationPipelining(b *testing.B) {
	m := mesh.Cylinder(benchParams().Scale)
	const iters = 4
	r, err := partition.PartitionMesh(context.Background(), m, 64, partition.SCOC, partition.Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	one, err := taskgraph.Build(m, r.Part, 64, taskgraph.Options{})
	if err != nil {
		b.Fatal(err)
	}
	chained, err := taskgraph.BuildIterations(m, r.Part, 64, iters, taskgraph.Options{})
	if err != nil {
		b.Fatal(err)
	}
	pm := flusim.BlockMap(64, 16)
	cluster := flusim.Cluster{NumProcs: 16, WorkersPerProc: 32}
	var barrier, pipelined int64
	for i := 0; i < b.N; i++ {
		rOne, err := flusim.Simulate(one, pm, flusim.Config{Cluster: cluster})
		if err != nil {
			b.Fatal(err)
		}
		barrier = int64(iters) * rOne.Makespan
		rChain, err := flusim.Simulate(chained, pm, flusim.Config{Cluster: cluster})
		if err != nil {
			b.Fatal(err)
		}
		pipelined = rChain.Makespan
	}
	b.ReportMetric(float64(barrier), "barrier_makespan")
	b.ReportMetric(float64(pipelined), "pipelined_makespan")
	b.ReportMetric(float64(barrier)/float64(pipelined), "pipelining_gain")
}

// BenchmarkAblationGeometricBaselines positions the related-work geometric
// partitioners (coordinate RCB, Hilbert SFC) against the graph-based
// strategies on schedule quality.
func BenchmarkAblationGeometricBaselines(b *testing.B) {
	m := mesh.Cylinder(benchParams().Scale)
	cluster := core.Cluster{NumProcs: 16, WorkersPerProc: 32}
	spans := map[string]int64{}
	for i := 0; i < b.N; i++ {
		for _, strat := range []partition.Strategy{partition.SCOC, partition.MCTL, partition.GeomRCB, partition.SFC} {
			d, err := core.Decompose(context.Background(), m, 128, strat, partition.Options{Seed: 2})
			if err != nil {
				b.Fatal(err)
			}
			sim, err := d.SimulateWith(cluster, flusim.Eager, false)
			if err != nil {
				b.Fatal(err)
			}
			spans[strat.String()] = sim.Makespan
		}
	}
	for name, span := range spans {
		b.ReportMetric(float64(span), name+"_makespan")
	}
}

// BenchmarkAblationConnectivityRepair measures what the §IX post-processing
// pass trades: fragments removed vs per-level balance lost.
func BenchmarkAblationConnectivityRepair(b *testing.B) {
	m := mesh.Cylinder(benchParams().Scale)
	g := m.DualGraph(mesh.DualGraphOptions{Constraints: mesh.PerLevel})
	var fragBefore, fragAfter, imbBefore, imbAfter float64
	for i := 0; i < b.N; i++ {
		r, err := partition.PartitionMesh(context.Background(), m, 128, partition.MCTL, partition.Options{Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		fragBefore = float64(maxInts(partition.CountFragments(g, r.Part, 128)))
		imbBefore = partition.NewResult(g, r.Part, 128).MaxImbalance()
		partition.RepairConnectivity(g, r.Part, 128, 0.05)
		fragAfter = float64(maxInts(partition.CountFragments(g, r.Part, 128)))
		imbAfter = partition.NewResult(g, r.Part, 128).MaxImbalance()
	}
	b.ReportMetric(fragBefore, "fragments_before")
	b.ReportMetric(fragAfter, "fragments_after")
	b.ReportMetric(imbBefore, "level_imbalance_before")
	b.ReportMetric(imbAfter, "level_imbalance_after")
}

func maxInts(xs []int) int {
	m := 0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// BenchmarkTunerSweep measures the auto-granularity search of the paper's
// §IX perspective end-to-end.
func BenchmarkTunerSweep(b *testing.B) {
	m := mesh.Cylinder(benchParams().Scale * 0.5)
	var best float64
	for i := 0; i < b.N; i++ {
		res, err := tuner.Tune(context.Background(), m, tuner.Config{
			Cluster:  flusim.Cluster{NumProcs: 8, WorkersPerProc: 8},
			Strategy: partition.MCTL,
			PartOpts: partition.Options{Seed: int64(i)},
		})
		if err != nil {
			b.Fatal(err)
		}
		best = float64(res.Best.Domains)
	}
	b.ReportMetric(best, "best_domains")
}

// BenchmarkFig13EulerProduction repeats the Figure 13 production comparison
// with the compressible Euler kernels (5 conserved variables — the closest
// load to FLUSEPA's Navier-Stokes) instead of the scalar model.
func BenchmarkFig13EulerProduction(b *testing.B) {
	p := benchParams()
	m := mesh.Nozzle(p.Scale)
	cluster := flusim.Cluster{NumProcs: 6, WorkersPerProc: 4}
	var gains float64
	for i := 0; i < b.N; i++ {
		makespan := func(strat partition.Strategy) int64 {
			sv, err := solver.New(context.Background(), m, solver.Config{
				NumDomains: 12, Strategy: strat, Workers: 1,
				Model: solver.Euler, PartOpts: partition.Options{Seed: 1},
			})
			if err != nil {
				b.Fatal(err)
			}
			rep, err := sv.Run(3)
			if err != nil {
				b.Fatal(err)
			}
			res, err := sv.VirtualMakespan(rep, cluster, flusim.Eager, false)
			if err != nil {
				b.Fatal(err)
			}
			return res.Makespan
		}
		sc := makespan(partition.SCOC)
		mc := makespan(partition.MCTL)
		gains = 100 * (1 - float64(mc)/float64(sc))
	}
	b.ReportMetric(gains, "gain_%")
}

// BenchmarkDistributedIteration measures the message-passing execution path
// (internal/dist): per-process extracted meshes with explicit halo exchange,
// reporting the halo traffic a real MPI run would ship per iteration.
func BenchmarkDistributedIteration(b *testing.B) {
	m := mesh.Cylinder(benchParams().Scale)
	r, err := partition.PartitionMesh(context.Background(), m, 8, partition.MCTL, partition.Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	s, err := dist.New(m, r.Part, 8, fv.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	s.InitGaussian(1, 0.5, 0.5, 0.3, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.RunIteration()
	}
	b.StopTimer()
	b.ReportMetric(float64(s.BytesExchanged)/float64(b.N), "halo_bytes/iter")
}
